"""Tests for the DataLoader."""

import numpy as np
import pytest

from repro.data import DataLoader, TensorDataset


def make_dataset(n=10):
    x = np.arange(n, dtype=np.float64).reshape(n, 1)
    y = np.arange(n)
    return TensorDataset(x, y)


class TestBatching:
    def test_batch_sizes(self):
        loader = DataLoader(make_dataset(10), batch_size=4, shuffle=False)
        sizes = [len(b.x) for b in loader]
        assert sizes == [4, 4, 2]

    def test_drop_last(self):
        loader = DataLoader(
            make_dataset(10), batch_size=4, shuffle=False, drop_last=True
        )
        sizes = [len(b.x) for b in loader]
        assert sizes == [4, 4]

    def test_len(self):
        assert len(DataLoader(make_dataset(10), batch_size=4)) == 3
        assert len(DataLoader(make_dataset(10), batch_size=4, drop_last=True)) == 2
        assert len(DataLoader(make_dataset(8), batch_size=4)) == 2

    def test_covers_all_examples(self):
        loader = DataLoader(make_dataset(13), batch_size=5, rng=0)
        seen = np.concatenate([b.y for b in loader])
        assert sorted(seen) == list(range(13))

    def test_unshuffled_order(self):
        loader = DataLoader(make_dataset(6), batch_size=3, shuffle=False)
        first = next(iter(loader))
        assert np.array_equal(first.y, [0, 1, 2])


class TestIndices:
    def test_indices_match_examples(self):
        """batch.indices must identify each row's dataset position —
        the proposed defense's adversarial cache depends on it."""
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=3, rng=1)
        for batch in loader:
            for row, index in enumerate(batch.indices):
                assert batch.x[row, 0] == ds.examples[index, 0]

    def test_indices_are_a_permutation_each_epoch(self):
        loader = DataLoader(make_dataset(9), batch_size=4, rng=0)
        for _pass in range(2):
            indices = np.concatenate([b.indices for b in loader])
            assert sorted(indices) == list(range(9))


class TestShuffling:
    def test_reshuffles_between_passes(self):
        loader = DataLoader(make_dataset(50), batch_size=50, rng=0)
        order1 = next(iter(loader)).y.copy()
        order2 = next(iter(loader)).y.copy()
        assert not np.array_equal(order1, order2)

    def test_seeded_reproducibility(self):
        l1 = DataLoader(make_dataset(20), batch_size=20, rng=3)
        l2 = DataLoader(make_dataset(20), batch_size=20, rng=3)
        assert np.array_equal(next(iter(l1)).y, next(iter(l2)).y)


class TestValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(5), batch_size=0)

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            DataLoader(TensorDataset(np.zeros((0, 1)), np.zeros(0)))
