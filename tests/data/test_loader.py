"""Tests for the DataLoader."""

import numpy as np
import pytest

from repro.data import DataLoader, TensorDataset


def make_dataset(n=10):
    x = np.arange(n, dtype=np.float64).reshape(n, 1)
    y = np.arange(n)
    return TensorDataset(x, y)


class TestBatching:
    def test_batch_sizes(self):
        loader = DataLoader(make_dataset(10), batch_size=4, shuffle=False)
        sizes = [len(b.x) for b in loader]
        assert sizes == [4, 4, 2]

    def test_drop_last(self):
        loader = DataLoader(
            make_dataset(10), batch_size=4, shuffle=False, drop_last=True
        )
        sizes = [len(b.x) for b in loader]
        assert sizes == [4, 4]

    def test_len(self):
        assert len(DataLoader(make_dataset(10), batch_size=4)) == 3
        assert len(DataLoader(make_dataset(10), batch_size=4, drop_last=True)) == 2
        assert len(DataLoader(make_dataset(8), batch_size=4)) == 2

    def test_covers_all_examples(self):
        loader = DataLoader(make_dataset(13), batch_size=5, rng=0)
        seen = np.concatenate([b.y for b in loader])
        assert sorted(seen) == list(range(13))

    def test_unshuffled_order(self):
        loader = DataLoader(make_dataset(6), batch_size=3, shuffle=False)
        first = next(iter(loader))
        assert np.array_equal(first.y, [0, 1, 2])


class TestIndices:
    def test_indices_match_examples(self):
        """batch.indices must identify each row's dataset position —
        the proposed defense's adversarial cache depends on it."""
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=3, rng=1)
        for batch in loader:
            for row, index in enumerate(batch.indices):
                assert batch.x[row, 0] == ds.examples[index, 0]

    def test_indices_are_a_permutation_each_epoch(self):
        loader = DataLoader(make_dataset(9), batch_size=4, rng=0)
        for _pass in range(2):
            indices = np.concatenate([b.indices for b in loader])
            assert sorted(indices) == list(range(9))


class TestShuffling:
    def test_reshuffles_between_passes(self):
        loader = DataLoader(make_dataset(50), batch_size=50, rng=0)
        order1 = next(iter(loader)).y.copy()
        order2 = next(iter(loader)).y.copy()
        assert not np.array_equal(order1, order2)

    def test_seeded_reproducibility(self):
        l1 = DataLoader(make_dataset(20), batch_size=20, rng=3)
        l2 = DataLoader(make_dataset(20), batch_size=20, rng=3)
        assert np.array_equal(next(iter(l1)).y, next(iter(l2)).y)


class TestValidation:
    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(5), batch_size=0)

    def test_empty_dataset(self):
        with pytest.raises(ValueError):
            DataLoader(TensorDataset(np.zeros((0, 1)), np.zeros(0)))


class TestPrefetchTracing:
    def test_prefetch_span_joins_the_consumer_trace(self):
        """The producer thread's span parents on the consuming epoch span."""
        from repro import telemetry as tel

        sink = tel.InMemorySink()
        previous = tel.set_enabled(True)
        tel.add_sink(sink)
        try:
            loader = DataLoader(
                make_dataset(12), batch_size=4, shuffle=False, prefetch=True
            )
            with tel.span("epoch", emit=True) as epoch:
                for _batch in loader:
                    pass
                epoch_span_id = epoch.span_id
                trace_id = epoch._resolve_trace_id()
        finally:
            tel.remove_sink(sink)
            tel.set_enabled(previous)
            tel.reset_metrics()
        (prefetch,) = sink.spans("data.prefetch")
        assert prefetch["trace_id"] == trace_id
        assert prefetch["parent_id"] == epoch_span_id
        assert prefetch["attrs"]["batches"] == 3
        assert prefetch["thread"] == "repro-data-prefetch"

    def test_prefetch_thread_records_nothing_while_disabled(self):
        from repro import telemetry as tel

        sink = tel.InMemorySink()
        tel.add_sink(sink)
        try:
            loader = DataLoader(
                make_dataset(8), batch_size=4, shuffle=False, prefetch=True
            )
            for _batch in loader:
                pass
        finally:
            tel.remove_sink(sink)
        assert sink.spans() == []
