"""Tests for the dataset registry."""

import numpy as np
import pytest

from repro.data import dataset_epsilon, load_dataset


class TestLoadDataset:
    def test_digits_split_sizes(self):
        train, test = load_dataset(
            "digits", train_per_class=5, test_per_class=2, seed=0
        )
        assert len(train) == 50
        assert len(test) == 20

    def test_fashion(self):
        train, test = load_dataset(
            "fashion", train_per_class=3, test_per_class=2, seed=0
        )
        assert len(train) == 30

    def test_train_test_disjoint_generation(self):
        """Train and test come from different generator streams."""
        train, test = load_dataset(
            "digits", train_per_class=5, test_per_class=5, seed=0
        )
        tx, _ = train.arrays()
        ex, _ = test.arrays()
        # No test image should exactly equal any train image.
        for i in range(len(ex)):
            assert not (np.abs(tx - ex[i]).reshape(len(tx), -1).sum(1) < 1e-12).any()

    def test_deterministic(self):
        a, _ = load_dataset("digits", train_per_class=3, test_per_class=2, seed=1)
        b, _ = load_dataset("digits", train_per_class=3, test_per_class=2, seed=1)
        assert np.array_equal(a.arrays()[0], b.arrays()[0])

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("cifar")


class TestEpsilon:
    def test_values(self):
        assert dataset_epsilon("digits") == 0.25
        assert dataset_epsilon("fashion") == 0.15

    def test_unknown(self):
        with pytest.raises(KeyError):
            dataset_epsilon("mnist")
