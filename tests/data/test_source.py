"""Tests for shard-based data sources and the byte-budgeted shard cache."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    ShardCache,
    SyntheticSource,
    TensorDataset,
    TensorSource,
    as_source,
)


def make_dataset(n=20, width=3):
    x = np.arange(n * width, dtype=np.float64).reshape(n, width)
    y = np.arange(n, dtype=np.int64) % 4
    return TensorDataset(x, y)


class TestTensorSource:
    def test_single_shard_by_default(self):
        source = TensorSource(make_dataset(10))
        assert source.num_shards == 1
        assert source.shard_size == 10

    def test_shard_geometry(self):
        source = TensorSource(make_dataset(10), shard_size=4)
        assert source.num_shards == 3
        assert source.shard_bounds(0) == (0, 4)
        assert source.shard_bounds(2) == (8, 10)
        with pytest.raises(IndexError):
            source.shard_bounds(3)

    def test_shards_are_views(self):
        dataset = make_dataset(10)
        source = TensorSource(dataset, shard_size=4)
        x, y = source.shard(1)
        assert x.base is not None  # zero-copy slice of the backing array
        assert np.array_equal(x, dataset.examples[4:8])
        assert np.array_equal(y, dataset.labels[4:8])

    def test_concatenated_shards_cover_dataset(self):
        dataset = make_dataset(11)
        source = TensorSource(dataset, shard_size=4)
        xs = np.concatenate(
            [source.shard(s)[0] for s in range(source.num_shards)]
        )
        assert np.array_equal(xs, dataset.examples)

    def test_materialize_round_trips(self):
        dataset = make_dataset(9)
        back = TensorSource(dataset, shard_size=2).materialize()
        assert np.array_equal(back.examples, dataset.examples)
        assert np.array_equal(back.labels, dataset.labels)

    def test_invalid_shard_size(self):
        with pytest.raises(ValueError):
            TensorSource(make_dataset(4), shard_size=0)

    def test_rejects_source_input(self):
        with pytest.raises(TypeError):
            TensorSource(TensorSource(make_dataset(4)))


class TestAsSource:
    def test_wraps_dataset(self):
        source = as_source(make_dataset(6), shard_size=2)
        assert isinstance(source, TensorSource)
        assert source.num_shards == 3

    def test_passes_source_through(self):
        source = TensorSource(make_dataset(6), shard_size=2)
        assert as_source(source) is source
        assert as_source(source, shard_size=2) is source

    def test_conflicting_shard_size_raises(self):
        source = TensorSource(make_dataset(6), shard_size=2)
        with pytest.raises(ValueError, match="conflicts"):
            as_source(source, shard_size=3)


class TestSyntheticSource:
    def test_shard_is_deterministic_in_seed_and_id(self):
        a = SyntheticSource("digits", num_examples=40, shard_size=16, seed=5)
        b = SyntheticSource("digits", num_examples=40, shard_size=16, seed=5)
        xa, ya = a.shard(1)
        xb, yb = b.shard(1)
        assert np.array_equal(xa, xb)
        assert np.array_equal(ya, yb)

    def test_shards_are_order_independent(self):
        """Any shard can be generated without generating its predecessors."""
        a = SyntheticSource("digits", num_examples=60, shard_size=20, seed=3)
        b = SyntheticSource("digits", num_examples=60, shard_size=20, seed=3)
        a.shard(0)
        a.shard(1)
        late_first = b.shard(2)
        assert np.array_equal(a.shard(2)[0], late_first[0])

    def test_different_seeds_differ(self):
        a = SyntheticSource("digits", num_examples=20, shard_size=20, seed=0)
        b = SyntheticSource("digits", num_examples=20, shard_size=20, seed=1)
        assert not np.array_equal(a.shard(0)[0], b.shard(0)[0])

    def test_labels_cycle_classes_by_global_index(self):
        source = SyntheticSource(
            "digits", num_examples=25, shard_size=10, seed=0
        )
        _, y = source.shard(1)
        assert np.array_equal(y, (10 + np.arange(10)) % 10)
        _, y_last = source.shard(2)
        assert len(y_last) == 5

    def test_images_in_unit_range(self):
        source = SyntheticSource(
            "fashion", num_examples=12, shard_size=12, seed=0
        )
        x, _ = source.shard(0)
        assert x.shape == (12, 1, 28, 28)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_materialize_matches_shards(self):
        source = SyntheticSource(
            "digits", num_examples=30, shard_size=8, seed=2
        )
        dataset = source.materialize()
        assert len(dataset) == 30
        x1, _ = source.shard(1)
        assert np.array_equal(dataset.examples[8:16], x1)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSource("digits", num_examples=0)
        with pytest.raises(ValueError):
            SyntheticSource("digits", num_examples=8, shard_size=0)
        with pytest.raises(KeyError):
            SyntheticSource("nope", num_examples=8)


class TestShardCache:
    def payload(self, nbytes):
        return np.zeros(nbytes, dtype=np.uint8)

    def test_get_put_and_stats(self):
        cache = ShardCache()
        assert cache.get("a") is None
        cache.put("a", 1, nbytes=10)
        assert cache.get("a") == 1
        assert cache.bytes == 10
        assert cache.hits == 1 and cache.misses == 1

    def test_budget_evicts_lru(self):
        evicted = []
        cache = ShardCache(
            budget_bytes=25, on_evict=lambda k, v: evicted.append(k)
        )
        cache.put("a", 1, nbytes=10)
        cache.put("b", 2, nbytes=10)
        cache.get("a")  # bump a -> b is now LRU
        cache.put("c", 3, nbytes=10)
        assert evicted == ["b"]
        assert "a" in cache and "c" in cache
        assert cache.bytes == 20
        assert cache.evictions == 1

    def test_most_recent_entry_never_evicted(self):
        cache = ShardCache(budget_bytes=5)
        cache.put("big", 1, nbytes=100)
        assert "big" in cache  # over budget but the only (MRU) entry

    def test_reserve_frees_ahead(self):
        evicted = []
        cache = ShardCache(
            budget_bytes=30, on_evict=lambda k, v: evicted.append(k)
        )
        cache.put("a", 1, nbytes=15)
        cache.put("b", 2, nbytes=15)
        cache.reserve(15)
        assert evicted == ["a"]
        cache.put("c", 3, nbytes=15)
        assert cache.bytes == 30
        assert cache.peak_bytes <= 30

    def test_replacing_entry_updates_weight(self):
        cache = ShardCache()
        cache.put("a", 1, nbytes=10)
        cache.put("a", 2, nbytes=30)
        assert cache.bytes == 30
        assert len(cache) == 1

    def test_clear_disposes(self):
        disposed = []
        cache = ShardCache(on_evict=lambda k, v: disposed.append(k))
        cache.put("a", 1, nbytes=5)
        cache.put("b", 2, nbytes=5)
        cache.clear()
        assert sorted(disposed) == ["a", "b"]
        assert cache.bytes == 0 and len(cache) == 0

    def test_peak_bytes_tracks_high_water(self):
        cache = ShardCache()
        cache.put("a", 1, nbytes=40)
        cache.put("b", 2, nbytes=10)
        cache.clear()
        assert cache.peak_bytes == 50

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            ShardCache(budget_bytes=0)

    def test_telemetry_gauges(self):
        cache = ShardCache()
        cache.put("a", 1, nbytes=7)
        gauges = cache.telemetry_gauges()
        assert gauges["data.shard_cache.bytes"] == 7
        assert gauges["data.shard_cache.entries"] == 1
        assert gauges["data.shard_cache.evictions"] == 0


class TestLoaderShardCacheIntegration:
    def test_budget_bounds_resident_bytes_across_passes(self):
        shard_bytes = 16 * 28 * 28 * 8 + 16 * 8
        budget = 2 * shard_bytes
        loader = DataLoader(
            SyntheticSource("digits", num_examples=96, shard_size=16, seed=0),
            batch_size=16,
            rng=0,
            budget_bytes=budget,
            prefetch=False,
        )
        for _ in range(2):
            for _batch in loader:
                pass
        assert loader.cache.peak_bytes <= budget
        assert loader.cache.evictions > 0

    def test_unbounded_cache_holds_every_shard(self):
        loader = DataLoader(
            SyntheticSource("digits", num_examples=64, shard_size=16, seed=0),
            batch_size=16,
            rng=0,
            prefetch=False,
        )
        for _batch in loader:
            pass
        assert len(loader.cache) == 4
        assert loader.cache.evictions == 0
