"""Tests for the streaming behaviours of the rebuilt DataLoader.

Legacy loader behaviour (single-shard in-memory iteration) is covered by
``test_loader.py``; this module tests what the shard-based rebuild adds:
shard-local shuffling, source equivalence, background prefetch, per-pass
dtype resolution, and the telemetry surface.
"""

import numpy as np
import pytest

from repro import telemetry as tel
from repro.data import (
    DataLoader,
    SyntheticSource,
    TensorDataset,
    TensorSource,
)
from repro.runtime import precision


def make_dataset(n=40, width=5):
    x = np.arange(n * width, dtype=np.float64).reshape(n, width)
    y = np.arange(n, dtype=np.int64) % 4
    return TensorDataset(x, y)


def collect(loader):
    return [
        (batch.x.copy(), batch.y.copy(), batch.indices.copy())
        for batch in loader
    ]


def assert_same_batches(a, b):
    assert len(a) == len(b)
    for (xa, ya, ia), (xb, yb, ib) in zip(a, b):
        assert np.array_equal(xa, xb)
        assert np.array_equal(ya, yb)
        assert np.array_equal(ia, ib)


class TestLegacyEquivalence:
    def test_default_wrap_matches_legacy_shuffle_stream(self):
        """One-shard streaming must reproduce the historical rng draws:
        exactly one ``permutation(n)`` per pass."""
        dataset = make_dataset(37)
        loader = DataLoader(dataset, batch_size=8, rng=42)
        rng = np.random.default_rng(42)
        for _pass in range(2):
            order = rng.permutation(37)
            got = np.concatenate([b.indices for b in loader])
            assert np.array_equal(got, order)

    def test_sharded_tensor_source_same_examples_per_pass(self):
        dataset = make_dataset(30)
        loader = DataLoader(
            TensorSource(dataset, shard_size=8), batch_size=7, rng=0
        )
        seen = np.concatenate([b.indices for b in loader])
        assert np.array_equal(np.sort(seen), np.arange(30))
        for batch in loader:
            assert np.array_equal(batch.x, dataset.examples[batch.indices])


class TestShardLocalShuffle:
    def test_shard_visit_order_is_contiguous(self):
        """Examples of one shard appear as one contiguous run per pass."""
        loader = DataLoader(
            TensorSource(make_dataset(32), shard_size=8),
            batch_size=4,
            rng=1,
        )
        order = np.concatenate([b.indices for b in loader])
        shard_of = order // 8
        boundaries = np.flatnonzero(np.diff(shard_of) != 0)
        assert len(boundaries) == 3  # 4 shards -> exactly 3 transitions

    def test_passes_reshuffle(self):
        loader = DataLoader(
            TensorSource(make_dataset(32), shard_size=8),
            batch_size=8,
            rng=0,
        )
        first = np.concatenate([b.indices for b in loader])
        second = np.concatenate([b.indices for b in loader])
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_sequential(self):
        loader = DataLoader(
            TensorSource(make_dataset(20), shard_size=6),
            batch_size=6,
            shuffle=False,
        )
        order = np.concatenate([b.indices for b in loader])
        assert np.array_equal(order, np.arange(20))


class TestSourceEquivalence:
    def test_synthetic_stream_equals_materialized_tensor_source(self):
        """Streamed generation == in-memory iteration, bit for bit, when
        the shard structure and loader rng agree."""
        stream = SyntheticSource(
            "digits", num_examples=64, shard_size=16, seed=9
        )
        materialized = TensorSource(stream.materialize(), shard_size=16)
        for prefetch in (False, True):
            a = collect(
                DataLoader(stream, batch_size=12, rng=5, prefetch=prefetch)
            )
            b = collect(
                DataLoader(materialized, batch_size=12, rng=5, prefetch=False)
            )
            assert_same_batches(a, b)

    def test_budget_does_not_change_batches(self):
        source = SyntheticSource(
            "digits", num_examples=64, shard_size=16, seed=4
        )
        unbounded = collect(
            DataLoader(source, batch_size=16, rng=2, prefetch=False)
        )
        shard_bytes = 16 * (28 * 28 * 8 + 8)
        tight = collect(
            DataLoader(
                source,
                batch_size=16,
                rng=2,
                budget_bytes=2 * shard_bytes,
                prefetch=False,
            )
        )
        assert_same_batches(unbounded, tight)


class TestPrefetch:
    def test_prefetch_defaults(self):
        assert not DataLoader(make_dataset(16), batch_size=4).prefetch
        assert DataLoader(
            TensorSource(make_dataset(16), shard_size=4), batch_size=4
        ).prefetch

    def test_prefetch_equals_sync(self):
        source = TensorSource(make_dataset(40), shard_size=10)
        sync = collect(
            DataLoader(source, batch_size=8, rng=3, prefetch=False)
        )
        pre = collect(DataLoader(source, batch_size=8, rng=3, prefetch=True))
        assert_same_batches(sync, pre)

    def test_abandoned_iterator_stops_producer(self):
        import threading

        loader = DataLoader(
            TensorSource(make_dataset(64), shard_size=8),
            batch_size=4,
            rng=0,
            prefetch=True,
        )
        iterator = iter(loader)
        next(iterator)
        iterator.close()
        for _ in range(50):
            if not any(
                t.name == "repro-data-prefetch" and t.is_alive()
                for t in threading.enumerate()
            ):
                break
            import time

            time.sleep(0.02)
        assert not any(
            t.name == "repro-data-prefetch" and t.is_alive()
            for t in threading.enumerate()
        )

    def test_producer_error_surfaces_in_consumer(self):
        class Exploding(TensorSource):
            def shard(self, shard_id):
                if shard_id == 2:
                    raise RuntimeError("boom")
                return super().shard(shard_id)

        loader = DataLoader(
            Exploding(make_dataset(32), shard_size=8),
            batch_size=8,
            shuffle=False,
            prefetch=True,
        )
        with pytest.raises(RuntimeError, match="boom"):
            for _batch in loader:
                pass

    def test_prefetch_telemetry(self):
        from repro.telemetry.sinks import InMemorySink

        loader = DataLoader(
            TensorSource(make_dataset(32), shard_size=8),
            batch_size=8,
            rng=0,
            prefetch=True,
        )
        sink = InMemorySink()
        with tel.capture(sink=sink):
            for _batch in loader:
                pass
        metrics = sink.metrics()
        assert metrics["counters"]["data.prefetch.batches"] == 4
        assert metrics["counters"]["data.batches"] == 4
        assert "data.shard_cache.bytes" in metrics["gauges"]
        assert "data.prefetch.queue_depth" in metrics["gauges"]


class TestPerPassDtype:
    def test_dtype_rechecked_every_pass(self):
        """Regression: the old loader cast once at construction, so a
        loader built under one precision policy served stale batches
        after the policy changed."""
        dataset = make_dataset(16)
        with precision("float64"):
            loader = DataLoader(dataset, batch_size=8, rng=0)
            assert next(iter(loader)).x.dtype == np.float64
        with precision("float32"):
            assert next(iter(loader)).x.dtype == np.float32
        with precision("float64"):
            assert next(iter(loader)).x.dtype == np.float64

    def test_dtype_switch_preserves_values(self):
        dataset = make_dataset(12)
        loader = DataLoader(dataset, batch_size=12, shuffle=False)
        with precision("float64"):
            wide = next(iter(loader)).x
        with precision("float32"):
            narrow = next(iter(loader)).x
        assert np.array_equal(narrow, wide.astype(np.float32))

    def test_dtype_switch_drops_stale_cache_entries(self):
        loader = DataLoader(
            TensorSource(make_dataset(16), shard_size=8),
            batch_size=8,
            prefetch=False,
        )
        with precision("float32"):
            for _batch in loader:
                pass
            entries_32 = len(loader.cache)
        with precision("float64"):
            for _batch in loader:
                pass
        assert entries_32 == 2
        # The float32 casts were invalidated, not retained alongside.
        assert len(loader.cache) == 2

    def test_synthetic_source_streams_in_policy_dtype(self):
        source = SyntheticSource(
            "digits", num_examples=16, shard_size=8, seed=0, dtype=np.float64
        )
        loader = DataLoader(source, batch_size=8, rng=0, prefetch=False)
        with precision("float32"):
            batch = next(iter(loader))
        assert batch.x.dtype == np.float32
