"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import SyntheticDigits, SyntheticFashion
from repro.data.synthetic import generate_digits, generate_fashion
from repro.data.synthetic.render import (
    affine_points,
    pixel_grid,
    render_polyline,
)


class TestRenderPrimitives:
    def test_pixel_grid_bounds(self):
        xs, ys = pixel_grid(28)
        assert xs.shape == (28, 28)
        assert 0.0 < xs.min() < xs.max() < 1.0

    def test_render_polyline_range(self):
        img = render_polyline([(0.2, 0.5), (0.8, 0.5)], size=28)
        assert img.shape == (28, 28)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_stroke_is_bright_on_line(self):
        img = render_polyline([(0.1, 0.5), (0.9, 0.5)], size=28, width=0.05)
        assert img[14, 14] > 0.9      # on the stroke
        assert img[2, 14] < 0.1       # far from it

    def test_degenerate_segment_renders_point(self):
        img = render_polyline([(0.5, 0.5), (0.5, 0.5)], size=28, width=0.05)
        # Nearest pixel centre is ~0.018 away from the point in each axis.
        assert img[14, 14] > 0.8

    def test_invalid_polyline(self):
        with pytest.raises(ValueError):
            render_polyline([(0.5, 0.5)], size=28)

    def test_affine_identity(self):
        pts = np.array([[0.2, 0.3], [0.7, 0.8]])
        assert np.allclose(affine_points(pts), pts)

    def test_affine_translation(self):
        pts = np.array([[0.5, 0.5]])
        out = affine_points(pts, translation=(0.1, -0.2))
        assert np.allclose(out, [[0.6, 0.3]])

    def test_affine_rotation_preserves_center(self):
        out = affine_points(np.array([[0.5, 0.5]]), rotation=1.0)
        assert np.allclose(out, [[0.5, 0.5]])


class TestGenerateDigits:
    def test_shapes_and_range(self):
        x, y = generate_digits(5, rng=0)
        assert x.shape == (50, 1, 28, 28)
        assert y.shape == (50,)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_balanced_classes(self):
        _x, y = generate_digits(7, rng=0)
        counts = np.bincount(y, minlength=10)
        assert (counts == 7).all()

    def test_deterministic(self):
        x1, y1 = generate_digits(3, rng=42)
        x2, y2 = generate_digits(3, rng=42)
        assert np.array_equal(x1, x2)
        assert np.array_equal(y1, y2)

    def test_different_seeds_differ(self):
        x1, _ = generate_digits(3, rng=1)
        x2, _ = generate_digits(3, rng=2)
        assert not np.array_equal(x1, x2)

    def test_intra_class_variation(self):
        x, y = generate_digits(5, rng=0)
        ones = x[y == 1]
        assert not np.array_equal(ones[0], ones[1])

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_digits(0)

    def test_near_binary_pixels(self):
        """The MNIST stand-in must have saturated pixels (see DESIGN.md)."""
        x, _ = generate_digits(5, rng=0)
        extreme = ((x < 0.2) | (x > 0.8)).mean()
        assert extreme > 0.8


class TestGenerateFashion:
    def test_shapes_and_range(self):
        x, y = generate_fashion(5, rng=0)
        assert x.shape == (50, 1, 28, 28)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_balanced(self):
        _x, y = generate_fashion(4, rng=0)
        assert (np.bincount(y, minlength=10) == 4).all()

    def test_deterministic(self):
        x1, _ = generate_fashion(3, rng=9)
        x2, _ = generate_fashion(3, rng=9)
        assert np.array_equal(x1, x2)

    def test_classes_distinguishable_by_mean_image(self):
        """Class mean images must differ — otherwise nothing is learnable."""
        x, y = generate_fashion(10, rng=0)
        means = np.stack([x[y == c].mean(axis=0) for c in range(10)])
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.abs(means[a] - means[b]).mean() > 0.01

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_fashion(-1)


class TestDatasetClasses:
    def test_digits_dataset(self):
        ds = SyntheticDigits(num_per_class=3, seed=0)
        assert len(ds) == 30
        x, y = ds[0]
        assert x.shape == (1, 28, 28)
        assert ds.num_classes == 10

    def test_fashion_dataset(self):
        ds = SyntheticFashion(num_per_class=3, seed=0)
        assert len(ds) == 30
        assert len(ds.class_names) == 10

    def test_custom_size(self):
        ds = SyntheticDigits(num_per_class=2, size=14, seed=0)
        assert ds[0][0].shape == (1, 14, 14)
        assert ds.image_shape == (1, 14, 14)
