"""Tests for array transforms."""

import numpy as np
import pytest

from repro.data import (
    ClipToUnit,
    Compose,
    GaussianNoise,
    Normalize,
    RandomShift,
)


def batch(n=4, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, 1, 8, 8))


class TestNormalize:
    def test_math(self):
        out = Normalize(0.5, 2.0)(np.array([0.5, 2.5]))
        assert np.allclose(out, [0.0, 1.0])

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            Normalize(0.0, 0.0)


class TestClipToUnit:
    def test_clips(self):
        out = ClipToUnit()(np.array([-1.0, 0.5, 3.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])


class TestGaussianNoise:
    def test_changes_values(self):
        x = batch()
        assert not np.array_equal(GaussianNoise(0.1, rng=0)(x), x)

    def test_zero_std_identity(self):
        x = batch()
        assert np.array_equal(GaussianNoise(0.0)(x), x)

    def test_noise_magnitude(self):
        x = np.zeros((1000,))
        noisy = GaussianNoise(0.1, rng=0)(x)
        assert abs(noisy.std() - 0.1) < 0.02

    def test_invalid_std(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)


class TestRandomShift:
    def test_zero_shift_identity(self):
        x = batch()
        assert np.array_equal(RandomShift(0)(x), x)

    def test_preserves_shape(self):
        x = batch()
        assert RandomShift(2, rng=0)(x).shape == x.shape

    def test_pads_with_zeros(self):
        x = np.ones((20, 1, 8, 8))
        out = RandomShift(3, rng=0)(x)
        # Some image must have been shifted, introducing zero strips.
        assert (out == 0).any()

    def test_mass_not_increased(self):
        x = batch()
        out = RandomShift(2, rng=0)(x)
        assert out.sum() <= x.sum() + 1e-9

    def test_invalid(self):
        with pytest.raises(ValueError):
            RandomShift(-1)


class TestCompose:
    def test_applies_in_order(self):
        pipeline = Compose([Normalize(0.0, 2.0), ClipToUnit()])
        out = pipeline(np.array([4.0, -2.0]))
        assert np.allclose(out, [1.0, 0.0])

    def test_empty_is_identity(self):
        x = batch()
        assert np.array_equal(Compose([])(x), x)
