"""Tests for FGSM-Adv and BIM(k)-Adv trainers."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.data import DataLoader
from repro.defenses import FgsmAdvTrainer, IterAdvTrainer
from repro.models import mnist_mlp
from repro.optim import Adam


def make(name_cls, digits_small, epochs=0, **kwargs):
    model = mnist_mlp(seed=0)
    trainer = name_cls(
        model, Adam(model.parameters(), lr=2e-3), epsilon=0.2, **kwargs
    )
    if epochs:
        train, _ = digits_small
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=epochs)
    return trainer


class TestFgsmAdv:
    def test_trains_and_gains_fgsm_robustness(self, digits_small):
        train, test = digits_small
        trainer = make(FgsmAdvTrainer, digits_small, epochs=12,
                       warmup_epochs=2)
        x, y = test.arrays()
        model = trainer.model
        clean_acc = (model.predict(x) == y).mean()
        x_adv = FGSM(model, 0.2).generate(x, y)
        adv_acc = (model.predict(x_adv) == y).mean()
        # Thresholds calibrated for the tiny 20-per-class split: an
        # undefended model scores ~0 under this attack.
        assert clean_acc > 0.8
        assert adv_acc > 0.1

    def test_attack_lazily_bound_to_model(self, digits_small):
        trainer = make(FgsmAdvTrainer, digits_small)
        assert trainer.attack is None
        attack = trainer._ensure_attack()
        assert attack.model is trainer.model
        assert trainer._ensure_attack() is attack  # cached

    def test_warmup_skips_attack(self, digits_small):
        train, _ = digits_small
        trainer = make(FgsmAdvTrainer, digits_small, warmup_epochs=2)
        loader = DataLoader(train, batch_size=64, rng=0)
        trainer.fit(loader, epochs=2)
        assert trainer.attack is None  # never instantiated during warmup
        trainer.fit(loader, epochs=1)
        assert trainer.attack is not None

    def test_in_warmup_flag(self, digits_small):
        trainer = make(FgsmAdvTrainer, digits_small, warmup_epochs=3)
        assert trainer.in_warmup
        trainer.epoch = 3
        assert not trainer.in_warmup

    def test_clean_weight_validation(self, digits_small):
        with pytest.raises(ValueError):
            make(FgsmAdvTrainer, digits_small, clean_weight=1.5)

    def test_warmup_validation(self, digits_small):
        with pytest.raises(ValueError):
            make(FgsmAdvTrainer, digits_small, warmup_epochs=-1)


class TestIterAdv:
    def test_uses_bim_attack(self, digits_small):
        trainer = make(IterAdvTrainer, digits_small, num_steps=7)
        attack = trainer._ensure_attack()
        assert attack.num_steps == 7

    def test_name_with_steps(self, digits_small):
        trainer = make(IterAdvTrainer, digits_small, num_steps=10)
        assert trainer.name_with_steps == "bim10_adv"

    def test_costlier_than_fgsm_adv(self, digits_small):
        """Iter-Adv's per-epoch cost must exceed Single-Adv's — the paper's
        efficiency argument in Table I."""
        train, _ = digits_small
        loader = DataLoader(train, batch_size=64, rng=0)

        fgsm_trainer = make(FgsmAdvTrainer, digits_small)
        iter_trainer = make(IterAdvTrainer, digits_small, num_steps=10)
        fgsm_hist = fgsm_trainer.fit(loader, epochs=2)
        iter_hist = iter_trainer.fit(loader, epochs=2)
        assert iter_hist.time_per_epoch > fgsm_hist.time_per_epoch * 1.5

    def test_gains_bim_robustness(self, digits_small):
        from repro.attacks import BIM

        train, test = digits_small
        trainer = make(IterAdvTrainer, digits_small, epochs=12,
                       num_steps=5, warmup_epochs=2)
        x, y = test.arrays()
        model = trainer.model
        x_adv = BIM(model, 0.2, num_steps=5).generate(x, y)
        adv_acc = (model.predict(x_adv) == y).mean()
        # The undefended baseline would be ~0 on this budget.
        assert adv_acc > 0.08

    def test_mixture_loss_between_clean_and_adv(self, digits_small):
        """alpha=1 must reduce to the vanilla loss."""
        train, _ = digits_small
        loader = DataLoader(train, batch_size=32, rng=0, shuffle=False)
        batch = next(iter(loader))

        t_mixed = make(FgsmAdvTrainer, digits_small, clean_weight=1.0)
        from repro.autograd import Tensor
        from repro.nn import cross_entropy

        loss = t_mixed.compute_batch_loss(batch).item()
        clean = cross_entropy(t_mixed.model(Tensor(batch.x)), batch.y).item()
        assert np.isclose(loss, clean)
