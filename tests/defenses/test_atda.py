"""Tests for the ATDA trainer."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.data.loader import Batch
from repro.defenses import AtdaTrainer
from repro.models import mnist_mlp
from repro.optim import Adam


def make_trainer(**kwargs):
    model = mnist_mlp(seed=0)
    return AtdaTrainer(
        model, Adam(model.parameters(), lr=2e-3), epsilon=0.2, **kwargs
    )


def make_batch(digits_small, n=16):
    train, _ = digits_small
    x, y = train.arrays()
    return Batch(x=x[:n], y=y[:n], indices=np.arange(n))


class TestConstruction:
    def test_requires_embedding_model(self):
        from repro.nn import Dense

        plain = Dense(4, 2, rng=0)
        with pytest.raises(TypeError, match="embed"):
            AtdaTrainer(plain, Adam(plain.parameters()), epsilon=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trainer(clean_weight=-0.1)
        with pytest.raises(ValueError):
            make_trainer(warmup_epochs=-1)

    def test_centers_lazy(self):
        assert make_trainer().centers is None


class TestLoss:
    def test_batch_loss_finite_and_positive(self, digits_small):
        trainer = make_trainer()
        loss = trainer.compute_batch_loss(make_batch(digits_small))
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_centers_created_and_updated(self, digits_small):
        trainer = make_trainer()
        trainer.compute_batch_loss(make_batch(digits_small))
        assert trainer.centers is not None
        assert trainer.centers.centers.shape[0] == 10
        assert np.abs(trainer.centers.centers).sum() > 0

    def test_da_terms_contribute(self, digits_small):
        """Turning the DA weights off must change the loss."""
        batch = make_batch(digits_small)
        with_da = make_trainer(lambda_uda=1.0, lambda_sda=0.1)
        without = make_trainer(lambda_uda=0.0, lambda_sda=0.0)
        loss_with = with_da.compute_batch_loss(batch).item()
        loss_without = without.compute_batch_loss(batch).item()
        assert loss_with != pytest.approx(loss_without)

    def test_warmup_uses_clean_loss_only(self, digits_small):
        from repro.autograd import Tensor
        from repro.nn import cross_entropy

        trainer = make_trainer(warmup_epochs=3)
        batch = make_batch(digits_small)
        loss = trainer.compute_batch_loss(batch).item()
        clean = cross_entropy(
            trainer.model(Tensor(batch.x)), batch.y
        ).item()
        assert loss == pytest.approx(clean)


class TestTraining:
    def test_fit_improves_fgsm_robustness(self, digits_small):
        from repro.attacks import FGSM

        train, test = digits_small
        trainer = make_trainer(warmup_epochs=2)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=12)
        x, y = test.arrays()
        model = trainer.model
        adv = FGSM(model, 0.2).generate(x, y)
        # Undefended models score ~0 here on the tiny split.
        assert (model.predict(adv) == y).mean() > 0.1

    def test_costlier_than_fgsm_adv_cheaper_than_iter(self, digits_small):
        """Table I cost ordering: fgsm_adv < atda < bim10_adv."""
        from repro.defenses import FgsmAdvTrainer, IterAdvTrainer

        train, _ = digits_small
        loader = DataLoader(train, batch_size=64, rng=0)

        model_f = mnist_mlp(seed=0)
        t_fgsm = FgsmAdvTrainer(
            model_f, Adam(model_f.parameters()), epsilon=0.2
        ).fit(loader, epochs=2).time_per_epoch
        t_atda = make_trainer().fit(loader, epochs=2).time_per_epoch
        model_i = mnist_mlp(seed=0)
        t_iter = IterAdvTrainer(
            model_i, Adam(model_i.parameters()), epsilon=0.2, num_steps=10
        ).fit(loader, epochs=2).time_per_epoch
        assert t_fgsm < t_atda < t_iter
