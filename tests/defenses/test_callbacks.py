"""Tests for training callbacks."""

import os

import numpy as np
import pytest

from repro.data import DataLoader
from repro.defenses import Checkpointer, EarlyStopping, Trainer
from repro.models import mnist_mlp
from repro.optim import Adam


class TestCheckpointer:
    def test_periodic_saves(self, tmp_path, digits_small):
        train, _ = digits_small
        model = mnist_mlp(seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        ckpt = Checkpointer(str(tmp_path), every=2, keep_best=False)
        trainer.fit(
            DataLoader(train, batch_size=64, rng=0),
            epochs=4,
            callbacks=[ckpt],
        )
        files = sorted(os.listdir(tmp_path))
        assert "epoch_0002.npz" in files
        assert "epoch_0004.npz" in files

    def test_best_tracking_max_mode(self, tmp_path):
        model = mnist_mlp(seed=0)
        ckpt = Checkpointer(str(tmp_path), mode="max")
        ckpt.on_epoch_end(1, model, 0.5)
        ckpt.on_epoch_end(2, model, 0.7)
        ckpt.on_epoch_end(3, model, 0.6)
        assert ckpt.best_value == 0.7
        assert ckpt.best_epoch == 2
        assert os.path.exists(tmp_path / "best.npz")

    def test_best_tracking_min_mode(self, tmp_path):
        model = mnist_mlp(seed=0)
        ckpt = Checkpointer(str(tmp_path), mode="min")
        ckpt.on_epoch_end(1, model, 1.0)
        ckpt.on_epoch_end(2, model, 0.3)
        assert ckpt.best_value == 0.3

    def test_none_metric_no_best(self, tmp_path):
        model = mnist_mlp(seed=0)
        ckpt = Checkpointer(str(tmp_path))
        ckpt.on_epoch_end(1, model, None)
        assert ckpt.best_value is None

    def test_load_best_restores_weights(self, tmp_path):
        model = mnist_mlp(seed=0)
        ckpt = Checkpointer(str(tmp_path))
        ckpt.on_epoch_end(1, model, 0.9)
        saved = model.head.weight.data.copy()
        model.head.weight.data += 5.0
        ckpt.load_best(model)
        assert np.allclose(model.head.weight.data, saved)

    def test_never_requests_stop(self, tmp_path):
        model = mnist_mlp(seed=0)
        ckpt = Checkpointer(str(tmp_path))
        assert ckpt.on_epoch_end(1, model, 0.9) is False

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpointer(str(tmp_path), every=-1)
        with pytest.raises(ValueError):
            Checkpointer(str(tmp_path), mode="median")


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, mode="max")
        model = mnist_mlp(seed=0)
        assert not stopper.on_epoch_end(1, model, 0.9)
        assert not stopper.on_epoch_end(2, model, 0.8)  # stale 1
        assert stopper.on_epoch_end(3, model, 0.8)      # stale 2 -> stop

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2, mode="max")
        model = mnist_mlp(seed=0)
        stopper.on_epoch_end(1, model, 0.5)
        stopper.on_epoch_end(2, model, 0.4)
        stopper.on_epoch_end(3, model, 0.6)  # improvement
        assert stopper.stale == 0

    def test_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.1, mode="max")
        model = mnist_mlp(seed=0)
        stopper.on_epoch_end(1, model, 0.5)
        # +0.05 is below min_delta -> counts as stale -> stop
        assert stopper.on_epoch_end(2, model, 0.55)

    def test_min_mode(self):
        stopper = EarlyStopping(patience=1, mode="min")
        model = mnist_mlp(seed=0)
        stopper.on_epoch_end(1, model, 1.0)
        assert not stopper.on_epoch_end(2, model, 0.5)
        assert stopper.on_epoch_end(3, model, 0.7)

    def test_none_metric_ignored(self):
        stopper = EarlyStopping(patience=1)
        model = mnist_mlp(seed=0)
        assert not stopper.on_epoch_end(1, model, None)
        assert stopper.stale == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-0.1)
        with pytest.raises(ValueError):
            EarlyStopping(mode="best")


class TestIntegration:
    def test_early_stop_cuts_training_short(self, digits_small):
        train, test = digits_small
        x, y = test.arrays()
        model = mnist_mlp(seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        # Patience 1 on a constant metric stops at the second evaluation.
        history = trainer.fit(
            DataLoader(train, batch_size=64, rng=0),
            epochs=20,
            eval_fn=lambda m: 0.5,
            eval_every=1,
            callbacks=[EarlyStopping(patience=1)],
        )
        assert len(history.losses) == 2
