"""Trainers must be bit-identical with the compiled tape engine on.

``REPRO_COMPILED`` (or the scoped ``repro.runtime.compiled`` toggle) swaps
the trainers' per-batch loss/backward onto :class:`CompiledStep` replays.
Eager execution stays the reference semantics, so a full training run —
losses, final parameters — must match eager bit for bit for every defense
that routes through the compiled step.
"""

import numpy as np
import pytest

from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import build_model
from repro.optim import SGD
from repro.runtime import compiled


def _fit(defense, enabled, epochs=2):
    train, _ = load_dataset("digits", train_per_class=4, test_per_class=1,
                            seed=0)
    loader = DataLoader(train, batch_size=8, rng=0)
    model = build_model("small_cnn", seed=0)
    trainer = build_trainer(
        defense, model, epsilon=0.25,
        optimizer=SGD(model.parameters(), lr=0.05),
    )
    with compiled(enabled):
        history = trainer.fit(loader, epochs=epochs)
    params = [p.data.copy() for p in model.parameters()]
    return history.losses, params, trainer


@pytest.mark.parametrize("defense", ["vanilla", "fgsm_adv", "proposed"])
def test_training_bit_identical_under_compiled_toggle(defense):
    eager_losses, eager_params, _ = _fit(defense, False)
    replay_losses, replay_params, trainer = _fit(defense, True)
    assert eager_losses == replay_losses, defense
    for eager_p, replay_p in zip(eager_params, replay_params):
        assert np.array_equal(eager_p, replay_p), defense
    # The equality must come from live tapes, not a silent fallback.
    steps = trainer.__dict__.get("_compiled_steps", {})
    assert steps, defense
    for name, step in steps.items():
        assert step.stats["disabled"] is None, (defense, name)
        assert step.stats["hits"] > 0, (defense, name)


def test_eager_default_builds_no_compiled_steps():
    """With the toggle off, trainers never touch the tape machinery."""
    _, _, trainer = _fit("proposed", False, epochs=1)
    assert "_compiled_steps" not in trainer.__dict__
