"""Unit tests for the epochwise defense's carried-perturbation store."""

import numpy as np
import pytest

from repro.defenses.delta import DeltaStore
from repro.runtime import compute_dtype, precision


def make_batch(indices, shape=(2, 2), scale=0.01):
    idx = np.asarray(indices, dtype=np.intp)
    rng = np.random.default_rng(0)
    x_clean = rng.uniform(0.2, 0.8, size=(len(idx), *shape))
    x_adv = np.clip(
        x_clean + rng.uniform(-scale, scale, size=x_clean.shape), 0.0, 1.0
    )
    return idx, x_adv, x_clean


class TestRoundTrip:
    def test_lookup_before_store_returns_clean_copy(self):
        store = DeltaStore(block_size=4)
        idx, _adv, clean = make_batch([0, 1, 2])
        out = store.lookup(idx, clean)
        assert np.array_equal(out, clean)
        assert out is not clean

    def test_store_then_lookup_reconstructs(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([0, 1, 5, 9])
        store.store(idx, adv, clean)
        out = store.lookup(idx, clean)
        assert np.allclose(out, adv, atol=1e-12)

    def test_reconstruction_keyed_by_index_not_position(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([0, 1, 2, 3])
        store.store(idx, adv, clean)
        flipped = idx[::-1].copy()
        out = store.lookup(flipped, clean[::-1].copy())
        assert np.allclose(out, adv[::-1], atol=1e-12)

    def test_partial_coverage_mixes_clean_and_carried(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([0, 1])
        store.store(idx, adv, clean)
        wide_idx, _a, wide_clean = make_batch([0, 1, 2, 3])
        out = store.lookup(wide_idx, wide_clean)
        assert np.allclose(out[:2], wide_clean[:2] + (adv - clean), atol=1e-12)
        assert np.array_equal(out[2:], wide_clean[2:])

    def test_reconstruction_clips_to_unit_box(self):
        store = DeltaStore(block_size=4)
        idx = np.array([0])
        clean = np.full((1, 2, 2), 0.5)
        adv = np.full((1, 2, 2), 0.9)
        store.store(idx, adv, clean)
        near_edge = np.full((1, 2, 2), 0.8)
        out = store.lookup(idx, near_edge)
        assert out.max() <= 1.0


class TestAccounting:
    def test_count_and_clear(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([0, 3, 7])
        assert store.count == 0
        store.store(idx, adv, clean)
        assert store.count == 3
        assert store.num_blocks == 2
        store.clear()
        assert store.count == 0 and store.nbytes == 0

    def test_mapping_helpers(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([2, 6])
        store.store(idx, adv, clean)
        assert store.has(2) and store.has(6)
        assert not store.has(3)
        tol = 1e-15 if np.dtype(compute_dtype()) == np.float64 else 1e-7
        assert np.allclose(store.delta(2), adv[0] - clean[0], atol=tol)
        with pytest.raises(KeyError):
            store.delta(3)
        assert list(store.indices()) == [2, 6]

    def test_budget_evicts_lru_blocks(self):
        shape = (2, 2)
        itemsize = np.dtype(compute_dtype()).itemsize
        block_bytes = 4 * (4 * itemsize + 1)  # 4 rows of 2x2 + has mask
        store = DeltaStore(block_size=4, budget_bytes=2 * block_bytes)
        for block in range(4):
            idx, adv, clean = make_batch(
                [block * 4, block * 4 + 1], shape=shape
            )
            store.store(idx, adv, clean)
        assert store.num_blocks <= 2
        assert store.evictions >= 2
        assert store.peak_bytes <= 2 * block_bytes
        # Evicted examples restart from clean.
        idx, _adv, clean = make_batch([0, 1], shape=shape)
        assert np.array_equal(store.lookup(idx, clean), clean)

    def test_telemetry_gauges(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([0])
        store.store(idx, adv, clean)
        gauges = store.telemetry_gauges()
        assert gauges["epochwise.cache_bytes"] > 0
        assert gauges["epochwise.cache_blocks"] == 1
        assert gauges["epochwise.cache_evictions"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeltaStore(block_size=0)


class TestRegimeChanges:
    def test_shape_change_drops_carried_state(self):
        store = DeltaStore(block_size=4)
        idx, adv, clean = make_batch([0, 1], shape=(2, 2))
        store.store(idx, adv, clean)
        idx3, adv3, clean3 = make_batch([0, 1], shape=(3, 3))
        store.store(idx3, adv3, clean3)
        assert store.count == 2  # only the new-shape rows remain
        assert np.allclose(store.lookup(idx3, clean3), adv3, atol=1e-12)

    def test_dtype_change_recasts_carried_state(self):
        store = DeltaStore(block_size=4)
        with precision("float64"):
            idx, adv, clean = make_batch([0, 1])
            store.store(idx, adv, clean)
        with precision("float32"):
            idx2, adv2, clean2 = make_batch([2, 3])
            store.store(
                idx2,
                adv2.astype(np.float32),
                clean2.astype(np.float32),
            )
            # Old rows survive, recast to the new policy dtype.
            assert store.count == 4
            assert store.delta(0).dtype == np.float32
