"""Tests for the ATDA domain-adaptation losses."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.defenses import (
    ClassCenters,
    coral_loss,
    covariance,
    margin_center_loss,
    mean_alignment_loss,
)


def emb(n=8, d=4, seed=0, shift=0.0):
    return Tensor(
        np.random.default_rng(seed).normal(size=(n, d)) + shift
    )


class TestCovariance:
    def test_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(16, 5))
        ours = covariance(Tensor(x)).data
        theirs = np.cov(x, rowvar=False)
        assert np.allclose(ours, theirs)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            covariance(Tensor(np.zeros(5)))

    def test_gradients(self):
        check_gradients(lambda a: covariance(a).sum(), [emb(6, 3)])


class TestCoral:
    def test_zero_for_identical_domains(self):
        x = emb()
        assert coral_loss(x, x).item() == pytest.approx(0.0)

    def test_positive_for_different_domains(self):
        a = emb(seed=0)
        b = Tensor(emb(seed=1).data * 3.0)  # different covariance scale
        assert coral_loss(a, b).item() > 0.0

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            coral_loss(emb(d=4), emb(d=5))

    def test_gradients(self):
        check_gradients(
            lambda a, b: coral_loss(a, b), [emb(6, 3), emb(6, 3, seed=1)]
        )

    def test_mean_invariant(self):
        """CORAL aligns covariances; adding a constant must not change it."""
        a, b = emb(seed=0), emb(seed=1)
        shifted = Tensor(b.data + 10.0)
        assert np.isclose(
            coral_loss(a, b).item(), coral_loss(a, shifted).item()
        )


class TestMeanAlignment:
    def test_zero_for_identical(self):
        x = emb()
        assert mean_alignment_loss(x, x).item() == pytest.approx(0.0)

    def test_detects_mean_shift(self):
        a = emb(seed=0)
        b = Tensor(a.data + 2.0)
        assert mean_alignment_loss(a, b).item() == pytest.approx(2.0)

    def test_gradients(self):
        check_gradients(
            lambda a, b: mean_alignment_loss(a, b),
            [emb(6, 3), emb(6, 3, seed=1)],
        )


class TestClassCenters:
    def test_first_update_adopts_batch_mean(self):
        centers = ClassCenters(3, 2, momentum=0.9)
        e = np.array([[1.0, 1.0], [3.0, 3.0]])
        centers.update(e, np.array([0, 0]))
        assert np.allclose(centers.centers[0], [2.0, 2.0])

    def test_ema_blends(self):
        centers = ClassCenters(2, 1, momentum=0.5)
        centers.update(np.array([[0.0]]), np.array([0]))
        centers.update(np.array([[2.0]]), np.array([0]))
        assert np.allclose(centers.centers[0], [1.0])

    def test_untouched_classes_stay_zero(self):
        centers = ClassCenters(3, 2)
        centers.update(np.array([[1.0, 1.0]]), np.array([1]))
        assert np.allclose(centers.centers[0], 0.0)
        assert np.allclose(centers.centers[2], 0.0)

    def test_accepts_tensor(self):
        centers = ClassCenters(2, 2)
        centers.update(Tensor(np.ones((2, 2))), np.array([0, 1]))
        assert np.allclose(centers.centers, 1.0)

    def test_as_array_copies(self):
        centers = ClassCenters(2, 2)
        arr = centers.as_array()
        arr[:] = 99.0
        assert np.allclose(centers.centers, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClassCenters(0, 2)
        with pytest.raises(ValueError):
            ClassCenters(2, 2, momentum=1.0)


class TestMarginCenterLoss:
    def test_zero_when_well_separated(self):
        # Embeddings sit exactly on their centres, centres far apart.
        centers = np.array([[0.0, 0.0], [100.0, 100.0]])
        embeddings = Tensor(np.array([[0.0, 0.0], [100.0, 100.0]]))
        loss = margin_center_loss(
            embeddings, np.array([0, 1]), centers, margin=1.0
        )
        assert loss.item() == pytest.approx(0.0)

    def test_positive_when_confused(self):
        centers = np.array([[0.0, 0.0], [0.1, 0.1]])
        embeddings = Tensor(np.array([[0.05, 0.05]]))
        loss = margin_center_loss(
            embeddings, np.array([0]), centers, margin=1.0
        )
        assert loss.item() > 0.0

    def test_larger_margin_larger_loss(self):
        centers = np.array([[0.0, 0.0], [1.0, 1.0]])
        embeddings = emb(6, 2)
        labels = np.array([0, 1, 0, 1, 0, 1])
        small = margin_center_loss(embeddings, labels, centers, margin=0.1)
        large = margin_center_loss(embeddings, labels, centers, margin=5.0)
        assert large.item() >= small.item()

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            margin_center_loss(
                emb(2, 2), np.array([0, 0]), np.zeros((1, 2))
            )

    def test_gradients_flow_to_embeddings(self):
        centers = np.random.default_rng(3).normal(size=(3, 4))
        labels = np.array([0, 1, 2, 0])
        x = emb(4, 4)
        x.requires_grad = True
        margin_center_loss(x, labels, centers, margin=2.0).backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0
