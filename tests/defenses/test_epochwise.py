"""Tests for the paper's proposed epoch-wise adversarial trainer.

These tests verify the Figure 3b control flow behaviourally: one
perturbation step per epoch, cross-epoch carry, projection into the
epsilon-ball, and periodic reset.
"""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.data.loader import Batch
from repro.defenses import EpochwiseAdvTrainer
from repro.models import mnist_mlp
from repro.optim import Adam

from tests.helpers import box_tol


def make_trainer(epsilon=0.2, **kwargs):
    model = mnist_mlp(seed=0)
    return EpochwiseAdvTrainer(
        model, Adam(model.parameters(), lr=2e-3), epsilon=epsilon, **kwargs
    )


def make_batch(digits_small, n=8):
    train, _ = digits_small
    x, y = train.arrays()
    return Batch(x=x[:n], y=y[:n], indices=np.arange(n))


class TestDefaults:
    def test_default_step_size_is_epsilon(self):
        assert make_trainer(epsilon=0.2).step_size == 0.2

    def test_paper_reset_interval(self):
        assert make_trainer().reset_interval == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trainer(epsilon=-1.0)
        with pytest.raises(ValueError):
            make_trainer(reset_interval=-1)
        with pytest.raises(ValueError):
            make_trainer(step_size=0.0)
        with pytest.raises(ValueError):
            make_trainer(warmup_epochs=-2)
        with pytest.raises(ValueError):
            make_trainer(clean_weight=2.0)


class TestCacheMechanics:
    def test_first_step_starts_from_clean(self, digits_small):
        trainer = make_trainer(epsilon=0.2, step_size=0.02)
        batch = make_batch(digits_small)
        x_adv = trainer.adversarial_batch(batch)
        # After ONE step of size 0.02, perturbation is at most 0.02.
        assert np.abs(x_adv - batch.x).max() <= 0.02 + box_tol(batch.x)

    def test_cache_populated_after_step(self, digits_small):
        trainer = make_trainer()
        batch = make_batch(digits_small)
        assert trainer.cache_size == 0
        trainer.adversarial_batch(batch)
        assert trainer.cache_size == len(batch.x)

    def test_perturbation_accumulates_across_calls(self, digits_small):
        """The epoch-wise iteration: k calls behave like k BIM steps."""
        trainer = make_trainer(epsilon=0.2, step_size=0.02)
        batch = make_batch(digits_small)
        norms = []
        for _ in range(5):
            x_adv = trainer.adversarial_batch(batch)
            norms.append(np.abs(x_adv - batch.x).max())
        assert all(b >= a - box_tol(batch.x) for a, b in zip(norms, norms[1:]))
        assert norms[-1] > norms[0]

    def test_total_perturbation_projected_to_epsilon(self, digits_small):
        trainer = make_trainer(epsilon=0.1, step_size=0.08)
        batch = make_batch(digits_small)
        for _ in range(10):
            x_adv = trainer.adversarial_batch(batch)
        assert np.abs(x_adv - batch.x).max() <= 0.1 + box_tol(batch.x)

    def test_examples_stay_in_unit_box(self, digits_small):
        trainer = make_trainer(epsilon=0.3)
        batch = make_batch(digits_small)
        for _ in range(5):
            x_adv = trainer.adversarial_batch(batch)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_cache_keyed_by_dataset_index(self, digits_small):
        """Rows must be re-associated by index even if batch order changes."""
        trainer = make_trainer(epsilon=0.2, step_size=0.02)
        batch = make_batch(digits_small, n=4)
        trainer.adversarial_batch(batch)
        flipped = Batch(
            x=batch.x[::-1].copy(),
            y=batch.y[::-1].copy(),
            indices=batch.indices[::-1].copy(),
        )
        cached = trainer._delta.lookup(flipped.indices, flipped.x)
        # cached rows reconstruct clip(clean + delta) in flipped order,
        # where the delta is keyed by dataset index.
        for row, index in enumerate(flipped.indices):
            assert np.array_equal(
                cached[row],
                np.clip(
                    flipped.x[row] + trainer._cache[int(index)], 0.0, 1.0
                ),
            )

    def test_reset_cache(self, digits_small):
        trainer = make_trainer()
        trainer.adversarial_batch(make_batch(digits_small))
        trainer.reset_cache()
        assert trainer.cache_size == 0


class TestResetSchedule:
    def test_reset_at_interval(self, digits_small):
        trainer = make_trainer(reset_interval=2, warmup_epochs=0)
        trainer.adversarial_batch(make_batch(digits_small))
        trainer.on_epoch_start(1)
        assert trainer.cache_size > 0
        trainer.on_epoch_start(2)
        assert trainer.cache_size == 0

    def test_no_reset_at_epoch_zero(self, digits_small):
        trainer = make_trainer(reset_interval=2, warmup_epochs=0)
        trainer.adversarial_batch(make_batch(digits_small))
        trainer.on_epoch_start(0)
        assert trainer.cache_size > 0

    def test_reset_offset_by_warmup(self, digits_small):
        trainer = make_trainer(reset_interval=2, warmup_epochs=3)
        trainer.adversarial_batch(make_batch(digits_small))
        trainer.on_epoch_start(4)  # adv_epoch = 1 -> no reset
        assert trainer.cache_size > 0
        trainer.on_epoch_start(5)  # adv_epoch = 2 -> reset
        assert trainer.cache_size == 0

    def test_zero_interval_never_resets(self, digits_small):
        trainer = make_trainer(reset_interval=0, warmup_epochs=0)
        trainer.adversarial_batch(make_batch(digits_small))
        for epoch in range(1, 50):
            trainer.on_epoch_start(epoch)
        assert trainer.cache_size > 0


class TestTraining:
    def test_fit_populates_cache_for_whole_dataset(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer(warmup_epochs=0)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=2)
        assert trainer.cache_size == len(train)

    def test_warmup_defers_cache(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer(warmup_epochs=2)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=2)
        assert trainer.cache_size == 0

    def test_cost_comparable_to_single_step(self, digits_small):
        """Per-epoch cost must be Single-Adv-like, NOT scale with any
        iteration count — the paper's efficiency claim."""
        from repro.defenses import FgsmAdvTrainer, IterAdvTrainer

        train, _ = digits_small
        loader = DataLoader(train, batch_size=64, rng=0)

        def time_of(trainer):
            return trainer.fit(loader, epochs=2).time_per_epoch

        t_proposed = time_of(make_trainer(warmup_epochs=0))
        model = mnist_mlp(seed=0)
        t_iter = time_of(
            IterAdvTrainer(
                model, Adam(model.parameters()), epsilon=0.2, num_steps=10
            )
        )
        assert t_proposed < t_iter / 2

    def test_end_to_end_robustness_improves(self, digits_small):
        from repro.attacks import BIM

        train, test = digits_small
        trainer = make_trainer(epsilon=0.2, warmup_epochs=2)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=14)
        x, y = test.arrays()
        model = trainer.model
        adv = BIM(model, 0.2, num_steps=5).generate(x, y)
        adv_acc = (model.predict(adv) == y).mean()
        assert adv_acc > 0.15  # vanilla would be ~0
