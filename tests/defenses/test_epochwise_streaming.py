"""Streamed epochwise training must equal in-memory training bit-for-bit.

The delta-store refactor and the streaming pipeline only earn their keep
if they change *nothing* about the numerics: a run that regenerates its
data shard-by-shard (SyntheticSource) must produce exactly the model an
in-memory run over the materialised same data produces, including across
a cache-reset boundary; and a byte budget must bound residency without
changing the batches.
"""

import numpy as np

from repro.data import DataLoader, SyntheticSource, TensorSource
from repro.defenses import EpochwiseAdvTrainer
from repro.models import mnist_mlp
from repro.optim import Adam

SHARD = 16
N = 64


def make_trainer(**kwargs):
    model = mnist_mlp(seed=0)
    return EpochwiseAdvTrainer(
        model,
        Adam(model.parameters(), lr=2e-3),
        epsilon=0.2,
        step_size=0.05,
        warmup_epochs=0,
        **kwargs,
    )


def stream_source(seed=11):
    return SyntheticSource(
        "digits", num_examples=N, shard_size=SHARD, seed=seed
    )


def params_of(trainer):
    return [p.data.copy() for p in trainer.model.parameters()]


class TestStreamedEqualsInMemory:
    def test_bit_for_bit_across_reset_boundary(self):
        """Same seed, same shard structure, 1 worker: streamed training
        equals in-memory training exactly.  Five epochs with
        ``reset_interval=2`` crosses two reset boundaries, so the carried
        state, the reset path and the post-reset rebuild all agree."""
        source = stream_source()
        streamed = make_trainer(reset_interval=2)
        streamed.fit(
            DataLoader(source, batch_size=16, rng=7), epochs=5
        )

        in_memory = make_trainer(reset_interval=2)
        in_memory.fit(
            DataLoader(
                TensorSource(source.materialize(), shard_size=SHARD),
                batch_size=16,
                rng=7,
            ),
            epochs=5,
        )

        for ps, pm in zip(params_of(streamed), params_of(in_memory)):
            assert np.array_equal(ps, pm)
        assert streamed.cache_size == in_memory.cache_size

    def test_shard_cache_budget_does_not_change_results(self):
        """A tight shard-cache budget only affects *residency*: shards
        are regenerable, so eviction can never change batch content and
        the trained model stays bit-for-bit identical."""
        from repro.runtime import compute_dtype

        itemsize = np.dtype(compute_dtype()).itemsize
        shard_bytes = SHARD * (28 * 28 * itemsize + 8)
        budget = 2 * shard_bytes

        unbounded = make_trainer(reset_interval=2)
        unbounded.fit(
            DataLoader(stream_source(), batch_size=16, rng=7), epochs=3
        )

        loader = DataLoader(
            stream_source(), batch_size=16, rng=7, budget_bytes=budget
        )
        bounded = make_trainer(reset_interval=2)
        bounded.fit(loader, epochs=3)

        assert loader.cache.peak_bytes <= budget
        assert loader.cache.evictions > 0
        for pb, pu in zip(params_of(bounded), params_of(unbounded)):
            assert np.array_equal(pb, pu)

    def test_delta_budget_bounds_peak_cache_bytes(self):
        """Under a small ``--data-budget-mb``-style budget, both pipeline
        stores stay within budget for the whole run (training degrades
        gracefully — evicted examples restart from clean)."""
        from repro.runtime import compute_dtype

        itemsize = np.dtype(compute_dtype()).itemsize
        shard_bytes = SHARD * (28 * 28 * itemsize + 8)
        budget = 2 * shard_bytes

        trainer = make_trainer(
            reset_interval=2,
            delta_block_size=SHARD,
            delta_budget_bytes=budget,
        )
        loader = DataLoader(
            stream_source(), batch_size=16, rng=7, budget_bytes=budget
        )
        trainer.fit(loader, epochs=3)

        assert loader.cache.peak_bytes <= budget
        assert trainer.delta_store.peak_bytes <= budget
        assert loader.cache.evictions > 0
        assert trainer.delta_store.evictions > 0
        # The resident working set is bounded, but training still ran
        # over every example each epoch.
        assert trainer.cache_size <= 2 * SHARD

    def test_streamed_training_learns(self):
        """End-to-end sanity: a streamed epochwise run trains a usable
        classifier on data that never existed in memory at once."""
        source = stream_source()
        trainer = make_trainer(reset_interval=0)
        trainer.fit(DataLoader(source, batch_size=16, rng=0), epochs=8)
        test = source.materialize()
        accuracy = (
            trainer.model.predict(test.examples) == test.labels
        ).mean()
        assert accuracy > 0.5
