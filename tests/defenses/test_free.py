"""Tests for free adversarial training (extension)."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.defenses import FreeAdvTrainer, Trainer
from repro.models import mnist_mlp
from repro.optim import Adam


def make_trainer(replays=4, **kwargs):
    model = mnist_mlp(seed=0)
    return FreeAdvTrainer(
        model,
        Adam(model.parameters(), lr=2e-3),
        epsilon=0.2,
        replays=replays,
        **kwargs,
    )


class TestValidation:
    def test_bad_replays(self):
        with pytest.raises(ValueError, match="replays"):
            make_trainer(replays=0)

    def test_bad_epsilon(self):
        model = mnist_mlp(seed=0)
        with pytest.raises(ValueError):
            FreeAdvTrainer(model, Adam(model.parameters()), epsilon=-0.1)

    def test_bad_warmup(self):
        with pytest.raises(ValueError):
            make_trainer(warmup_epochs=-1)

    def test_default_step_is_epsilon(self):
        assert make_trainer().step_size == 0.2


class TestMechanics:
    def test_delta_cache_populates(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer(replays=2)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=1)
        assert trainer.delta_cache_size == len(train)

    def test_delta_within_budget(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer(replays=3)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=2)
        for delta in trainer._delta.values():
            assert np.abs(delta).max() <= 0.2 + 1e-12

    def test_warmup_skips_free_phase(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer(warmup_epochs=2)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=2)
        assert trainer.delta_cache_size == 0

    def test_epoch_cost_scales_with_replays(self, digits_small):
        train, _ = digits_small
        loader = DataLoader(train, batch_size=64, rng=0)
        t1 = make_trainer(replays=1).fit(loader, epochs=2).time_per_epoch
        t4 = make_trainer(replays=4).fit(loader, epochs=2).time_per_epoch
        assert t4 > t1 * 2

    def test_loss_reported(self, digits_small):
        train, _ = digits_small
        history = make_trainer(replays=2).fit(
            DataLoader(train, batch_size=64, rng=0), epochs=2
        )
        assert all(np.isfinite(loss) for loss in history.losses)


class TestRobustness:
    def test_beats_vanilla_under_fgsm(self, digits_small):
        from repro.attacks import FGSM

        train, test = digits_small
        x, y = test.arrays()
        loader = DataLoader(train, batch_size=64, rng=0)

        free = make_trainer(replays=4, warmup_epochs=1)
        free.fit(loader, epochs=8)
        vanilla_model = mnist_mlp(seed=0)
        Trainer(vanilla_model, Adam(vanilla_model.parameters(), lr=2e-3)).fit(
            loader, epochs=8
        )

        free_acc = (
            free.model.predict(FGSM(free.model, 0.2).generate(x, y)) == y
        ).mean()
        vanilla_acc = (
            vanilla_model.predict(
                FGSM(vanilla_model, 0.2).generate(x, y)
            ) == y
        ).mean()
        assert free_acc > vanilla_acc
