"""Tests for the label-smoothing baseline."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.defenses import LabelSmoothingTrainer, build_trainer
from repro.models import mnist_mlp
from repro.optim import Adam


def make_trainer(smoothing=0.1):
    model = mnist_mlp(seed=0)
    return LabelSmoothingTrainer(
        model, Adam(model.parameters(), lr=2e-3), smoothing=smoothing
    )


class TestLabelSmoothing:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_trainer(smoothing=1.5)

    def test_trains_to_high_clean_accuracy(self, digits_small):
        train, test = digits_small
        trainer = make_trainer()
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=10)
        x, y = test.arrays()
        assert (trainer.model.predict(x) == y).mean() > 0.85

    def test_softens_confidence(self, digits_small):
        """Smoothed training must produce less extreme probabilities than
        hard-label training."""
        from repro.defenses import Trainer

        train, test = digits_small
        x, _y = test.arrays()
        loader = DataLoader(train, batch_size=64, rng=0)

        smooth = make_trainer(smoothing=0.3)
        smooth.fit(loader, epochs=10)
        hard_model = mnist_mlp(seed=0)
        Trainer(hard_model, Adam(hard_model.parameters(), lr=2e-3)).fit(
            loader, epochs=10
        )
        smooth_conf = smooth.model.predict_proba(x).max(axis=1).mean()
        hard_conf = hard_model.predict_proba(x).max(axis=1).mean()
        assert smooth_conf < hard_conf

    def test_still_defeated_by_bim(self, digits_small):
        """The negative-baseline property: label smoothing alone must NOT
        resist iterative attacks (this is why the paper needs adversarial
        training at all)."""
        from repro.attacks import BIM

        train, test = digits_small
        trainer = make_trainer()
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=10)
        x, y = test.arrays()
        model = trainer.model
        adv_acc = (
            model.predict(BIM(model, 0.25, num_steps=10).generate(x, y)) == y
        ).mean()
        assert adv_acc < 0.15

    def test_registry(self):
        trainer = build_trainer(
            "label_smooth", mnist_mlp(seed=0), epsilon=0.2
        )
        assert isinstance(trainer, LabelSmoothingTrainer)
