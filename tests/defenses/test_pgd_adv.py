"""Tests for PGD adversarial training (extension)."""

import numpy as np
import pytest

from repro.attacks import PGD
from repro.data import DataLoader
from repro.defenses import PgdAdvTrainer, build_trainer
from repro.models import mnist_mlp
from repro.optim import Adam


def make_trainer(**kwargs):
    model = mnist_mlp(seed=0)
    return PgdAdvTrainer(
        model, Adam(model.parameters(), lr=2e-3), epsilon=0.2, **kwargs
    )


class TestConstruction:
    def test_attack_is_pgd(self):
        trainer = make_trainer(num_steps=5, rng=0)
        attack = trainer._ensure_attack()
        assert isinstance(attack, PGD)
        assert attack.num_steps == 5
        assert attack.random_start

    def test_registry_builds_it(self):
        trainer = build_trainer("pgd_adv", mnist_mlp(seed=0), epsilon=0.2)
        assert isinstance(trainer, PgdAdvTrainer)

    def test_registry_builds_free(self):
        from repro.defenses import FreeAdvTrainer

        trainer = build_trainer("free_adv", mnist_mlp(seed=0), epsilon=0.2)
        assert isinstance(trainer, FreeAdvTrainer)


class TestTraining:
    def test_gains_robustness(self, digits_small):
        from repro.attacks import BIM

        train, test = digits_small
        trainer = make_trainer(num_steps=5, warmup_epochs=2, rng=0)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=12)
        x, y = test.arrays()
        model = trainer.model
        adv_acc = (
            model.predict(BIM(model, 0.2, num_steps=5).generate(x, y)) == y
        ).mean()
        assert adv_acc > 0.08  # undefended would be ~0

    def test_cost_similar_to_bim_adv(self, digits_small):
        from repro.defenses import IterAdvTrainer

        train, _ = digits_small
        loader = DataLoader(train, batch_size=64, rng=0)
        t_pgd = make_trainer(num_steps=5).fit(loader, epochs=2).time_per_epoch
        model = mnist_mlp(seed=0)
        t_bim = IterAdvTrainer(
            model, Adam(model.parameters()), epsilon=0.2, num_steps=5
        ).fit(loader, epochs=2).time_per_epoch
        assert 0.5 < t_pgd / t_bim < 2.0
