"""Tests for the defense registry."""

import pytest

from repro.defenses import (
    AtdaTrainer,
    DEFENSE_NAMES,
    EpochwiseAdvTrainer,
    FgsmAdvTrainer,
    IterAdvTrainer,
    Trainer,
    build_trainer,
)
from repro.models import mnist_mlp
from repro.optim import Adam, SGD


class TestBuildTrainer:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("vanilla", Trainer),
            ("fgsm_adv", FgsmAdvTrainer),
            ("atda", AtdaTrainer),
            ("proposed", EpochwiseAdvTrainer),
            ("bim10_adv", IterAdvTrainer),
            ("bim30_adv", IterAdvTrainer),
        ],
    )
    def test_builds_expected_class(self, name, cls):
        trainer = build_trainer(name, mnist_mlp(seed=0), epsilon=0.2)
        assert type(trainer) is cls

    def test_bim_step_counts(self):
        t10 = build_trainer("bim10_adv", mnist_mlp(seed=0), epsilon=0.2)
        t30 = build_trainer("bim30_adv", mnist_mlp(seed=0), epsilon=0.2)
        assert t10.num_steps == 10
        assert t30.num_steps == 30

    def test_all_names_listed(self):
        for name in DEFENSE_NAMES:
            build_trainer(name, mnist_mlp(seed=0), epsilon=0.2)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown defense"):
            build_trainer("magnet", mnist_mlp(seed=0), epsilon=0.2)

    def test_custom_optimizer_respected(self):
        model = mnist_mlp(seed=0)
        opt = SGD(model.parameters(), lr=0.5)
        trainer = build_trainer("vanilla", model, epsilon=0.2, optimizer=opt)
        assert trainer.optimizer is opt

    def test_default_optimizer_is_adam(self):
        trainer = build_trainer("vanilla", mnist_mlp(seed=0), epsilon=0.2)
        assert isinstance(trainer.optimizer, Adam)

    def test_kwargs_forwarded(self):
        trainer = build_trainer(
            "proposed", mnist_mlp(seed=0), epsilon=0.2, reset_interval=7
        )
        assert trainer.reset_interval == 7
