"""Tests for the defense registry."""

import pytest

from repro.defenses import (
    AtdaTrainer,
    DEFENSE_NAMES,
    EpochwiseAdvTrainer,
    FgsmAdvTrainer,
    IterAdvTrainer,
    Trainer,
    build_trainer,
)
from repro.models import mnist_mlp
from repro.optim import Adam, SGD


class TestBuildTrainer:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("vanilla", Trainer),
            ("fgsm_adv", FgsmAdvTrainer),
            ("atda", AtdaTrainer),
            ("proposed", EpochwiseAdvTrainer),
            ("bim10_adv", IterAdvTrainer),
            ("bim30_adv", IterAdvTrainer),
        ],
    )
    def test_builds_expected_class(self, name, cls):
        trainer = build_trainer(name, mnist_mlp(seed=0), epsilon=0.2)
        assert type(trainer) is cls

    def test_bim_step_counts(self):
        t10 = build_trainer("bim10_adv", mnist_mlp(seed=0), epsilon=0.2)
        t30 = build_trainer("bim30_adv", mnist_mlp(seed=0), epsilon=0.2)
        assert t10.num_steps == 10
        assert t30.num_steps == 30

    def test_all_names_listed(self):
        for name in DEFENSE_NAMES:
            build_trainer(name, mnist_mlp(seed=0), epsilon=0.2)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown defense"):
            build_trainer("magnet", mnist_mlp(seed=0), epsilon=0.2)

    def test_custom_optimizer_respected(self):
        model = mnist_mlp(seed=0)
        opt = SGD(model.parameters(), lr=0.5)
        trainer = build_trainer("vanilla", model, epsilon=0.2, optimizer=opt)
        assert trainer.optimizer is opt

    def test_default_optimizer_is_adam(self):
        trainer = build_trainer("vanilla", mnist_mlp(seed=0), epsilon=0.2)
        assert isinstance(trainer.optimizer, Adam)

    def test_kwargs_forwarded(self):
        trainer = build_trainer(
            "proposed", mnist_mlp(seed=0), epsilon=0.2, reset_interval=7
        )
        assert trainer.reset_interval == 7


class TestIterAdvPattern:
    """``bim{N}_adv`` / ``pgd{N}_adv`` resolve for ANY step count."""

    def test_arbitrary_bim_steps(self):
        trainer = build_trainer("bim7_adv", mnist_mlp(seed=0), epsilon=0.2)
        assert type(trainer) is IterAdvTrainer
        assert trainer.num_steps == 7

    def test_arbitrary_pgd_steps(self):
        from repro.defenses import PgdAdvTrainer

        trainer = build_trainer("pgd5_adv", mnist_mlp(seed=0), epsilon=0.2)
        assert type(trainer) is PgdAdvTrainer
        assert trainer.num_steps == 5

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError, match="unknown defense"):
            build_trainer("cw9_adv", mnist_mlp(seed=0), epsilon=0.2)


class TestCanonicalNamesAndShim:
    def test_defense_names(self):
        from repro.defenses import defense_names
        from repro.defenses.registry import (
            EXTENSION_DEFENSES,
            PAPER_DEFENSES,
        )

        assert defense_names(include_extensions=False) == PAPER_DEFENSES
        assert defense_names() == PAPER_DEFENSES + EXTENSION_DEFENSES

    def test_every_canonical_name_builds(self):
        from repro.defenses import defense_names

        for name in defense_names():
            build_trainer(name, mnist_mlp(seed=0), epsilon=0.2)

    def test_deprecated_constants_warn_but_resolve(self):
        import importlib

        import repro.defenses as defenses
        from repro.defenses.registry import (
            EXTENSION_DEFENSES,
            PAPER_DEFENSES,
        )

        with pytest.warns(DeprecationWarning, match="DEFENSE_NAMES"):
            assert defenses.DEFENSE_NAMES == PAPER_DEFENSES
        with pytest.warns(DeprecationWarning, match="EXTENSION_NAMES"):
            assert defenses.EXTENSION_NAMES == EXTENSION_DEFENSES
        registry = importlib.import_module("repro.defenses.registry")
        with pytest.warns(DeprecationWarning):
            assert registry.DEFENSE_NAMES == PAPER_DEFENSES

    def test_old_row_names_still_resolve(self):
        """The pre-registry names keep building the same trainer types."""
        old_rows = {
            "vanilla": Trainer,
            "fgsm_adv": FgsmAdvTrainer,
            "atda": AtdaTrainer,
            "proposed": EpochwiseAdvTrainer,
            "bim10_adv": IterAdvTrainer,
            "bim30_adv": IterAdvTrainer,
        }
        for name, cls in old_rows.items():
            assert type(
                build_trainer(name, mnist_mlp(seed=0), epsilon=0.2)
            ) is cls


class TestTrainingAttackSpecs:
    """The defense trainers resolve their attacks via the attack registry."""

    def test_iter_adv_attack_comes_from_registry(self):
        from repro.attacks import BIM

        trainer = build_trainer("bim10_adv", mnist_mlp(seed=0), epsilon=0.2)
        attack = trainer.make_attack()
        assert type(attack) is BIM
        assert attack.num_steps == 10
        assert attack.epsilon == 0.2

    def test_mixed_trainer_accepts_spec_strings(self):
        from repro.attacks import MIM
        from repro.defenses import FgsmAdvTrainer

        model = mnist_mlp(seed=0)
        trainer = FgsmAdvTrainer(
            model,
            Adam(model.parameters(), lr=1e-3),
            epsilon=0.2,
            attack_spec="mim:num_steps=3",
        )
        attack = trainer.make_attack()
        assert type(attack) is MIM
        assert attack.num_steps == 3
        assert attack.epsilon == 0.2

    def test_clean_spec_rejected(self):
        from repro.defenses import FgsmAdvTrainer

        model = mnist_mlp(seed=0)
        trainer = FgsmAdvTrainer(
            model,
            Adam(model.parameters(), lr=1e-3),
            epsilon=0.2,
            attack_spec="clean",
        )
        with pytest.raises(ValueError, match="real attack"):
            trainer.make_attack()
