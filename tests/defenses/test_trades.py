"""Tests for the TRADES trainer and KL divergence."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.data import DataLoader
from repro.data.loader import Batch
from repro.defenses import TradesTrainer, kl_divergence
from repro.models import mnist_mlp
from repro.optim import Adam

from tests.helpers import box_tol


def make_trainer(**kwargs):
    model = mnist_mlp(seed=0)
    return TradesTrainer(
        model, Adam(model.parameters(), lr=2e-3), epsilon=0.2, **kwargs
    )


def make_batch(digits_small, n=16):
    train, _ = digits_small
    x, y = train.arrays()
    return Batch(x=x[:n], y=y[:n], indices=np.arange(n))


class TestKLDivergence:
    def test_zero_for_identical(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        assert kl_divergence(logits, logits).item() == pytest.approx(0.0)

    def test_non_negative(self):
        p = Tensor(np.random.default_rng(0).normal(size=(6, 5)))
        q = Tensor(np.random.default_rng(1).normal(size=(6, 5)))
        assert kl_divergence(p, q).item() >= 0.0

    def test_asymmetric(self):
        # Note: permuted logit vectors give symmetric KL; use genuinely
        # different distributions.
        p = Tensor(np.array([[3.0, 0.0, 0.0]]))
        q = Tensor(np.array([[1.0, 1.0, 0.0]]))
        assert kl_divergence(p, q).item() != pytest.approx(
            kl_divergence(q, p).item()
        )

    def test_matches_manual(self):
        p_logits = np.array([[1.0, 2.0]])
        q_logits = np.array([[2.0, 0.5]])
        p = np.exp(p_logits) / np.exp(p_logits).sum()
        q = np.exp(q_logits) / np.exp(q_logits).sum()
        manual = float((p * np.log(p / q)).sum())
        ours = kl_divergence(Tensor(p_logits), Tensor(q_logits)).item()
        assert ours == pytest.approx(manual)

    def test_gradients(self):
        rng = np.random.default_rng(0)
        check_gradients(
            lambda a, b: kl_divergence(a, b),
            [Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(3, 4)))],
        )


class TestTradesTrainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_trainer(beta=0.0)
        with pytest.raises(ValueError):
            make_trainer(num_steps=0)
        with pytest.raises(ValueError):
            make_trainer(warmup_epochs=-1)

    def test_default_step_size(self):
        assert make_trainer(num_steps=10).step_size == pytest.approx(0.04)

    def test_warmup_is_pure_ce(self, digits_small):
        from repro.nn import cross_entropy

        trainer = make_trainer(warmup_epochs=2)
        batch = make_batch(digits_small)
        loss = trainer.compute_batch_loss(batch).item()
        clean = cross_entropy(
            trainer.model(Tensor(batch.x)), batch.y
        ).item()
        assert loss == pytest.approx(clean)

    def test_loss_exceeds_natural_after_warmup(self, digits_small):
        from repro.nn import cross_entropy

        trainer = make_trainer(num_steps=3, beta=3.0)
        batch = make_batch(digits_small)
        loss = trainer.compute_batch_loss(batch).item()
        natural = cross_entropy(
            trainer.model(Tensor(batch.x)), batch.y
        ).item()
        assert loss > natural  # KL term is non-negative, here positive

    def test_inner_max_stays_in_ball(self, digits_small):
        trainer = make_trainer(num_steps=5)
        batch = make_batch(digits_small, n=8)
        clean_logits = trainer.model(Tensor(batch.x)).data
        x_adv = trainer._maximise_kl(batch.x, clean_logits)
        assert np.abs(x_adv - batch.x).max() <= 0.2 + box_tol(batch.x)
        assert x_adv.min() >= 0.0 and x_adv.max() <= 1.0

    def test_training_gains_robustness(self, digits_small):
        from repro.attacks import BIM

        train, test = digits_small
        trainer = make_trainer(num_steps=5, beta=3.0, warmup_epochs=2)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=12)
        x, y = test.arrays()
        model = trainer.model
        adv_acc = (
            model.predict(BIM(model, 0.2, num_steps=5).generate(x, y)) == y
        ).mean()
        # At this tiny scale TRADES gains are modest but strictly above the
        # undefended baseline (~0.0).
        assert adv_acc > 0.04

    def test_registry(self):
        from repro.defenses import build_trainer

        trainer = build_trainer("trades", mnist_mlp(seed=0), epsilon=0.2)
        assert isinstance(trainer, TradesTrainer)
