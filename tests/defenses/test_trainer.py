"""Tests for the vanilla Trainer and TrainingHistory."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.defenses import Trainer, TrainingHistory
from repro.models import mnist_mlp
from repro.optim import Adam, SGD, StepLR


def make_trainer(lr=2e-3):
    model = mnist_mlp(seed=0)
    return Trainer(model, Adam(model.parameters(), lr=lr))


class TestFit:
    def test_loss_decreases(self, digits_small):
        train, _test = digits_small
        trainer = make_trainer()
        history = trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=6)
        assert history.losses[-1] < history.losses[0]

    def test_history_lengths(self, digits_small):
        train, _test = digits_small
        history = make_trainer().fit(
            DataLoader(train, batch_size=64, rng=0), epochs=3
        )
        assert len(history.losses) == 3
        assert len(history.epoch_seconds) == 3

    def test_reaches_high_clean_accuracy(self, digits_small):
        train, test = digits_small
        trainer = make_trainer()
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=10)
        x, y = test.arrays()
        assert (trainer.model.predict(x) == y).mean() > 0.85

    def test_eval_callback_invoked(self, digits_small):
        train, test = digits_small
        x, y = test.arrays()
        trainer = make_trainer()
        history = trainer.fit(
            DataLoader(train, batch_size=64, rng=0),
            epochs=4,
            eval_fn=lambda m: (m.predict(x) == y).mean(),
            eval_every=2,
        )
        assert set(history.eval_accuracy) == {2, 4}

    def test_eval_always_runs_on_last_epoch(self, digits_small):
        train, test = digits_small
        x, y = test.arrays()
        history = make_trainer().fit(
            DataLoader(train, batch_size=64, rng=0),
            epochs=3,
            eval_fn=lambda m: (m.predict(x) == y).mean(),
            eval_every=0,
        )
        assert list(history.eval_accuracy) == [3]

    def test_model_left_in_eval_mode(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer()
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=1)
        assert not trainer.model.training

    def test_epoch_counter_advances(self, digits_small):
        train, _ = digits_small
        trainer = make_trainer()
        loader = DataLoader(train, batch_size=64, rng=0)
        trainer.fit(loader, epochs=2)
        trainer.fit(loader, epochs=2)
        assert trainer.epoch == 4

    def test_invalid_epochs(self, digits_small):
        train, _ = digits_small
        with pytest.raises(ValueError):
            make_trainer().fit(DataLoader(train, rng=0), epochs=0)

    def test_scheduler_steps_once_per_epoch(self, digits_small):
        train, _ = digits_small
        model = mnist_mlp(seed=0)
        opt = SGD(model.parameters(), lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        trainer = Trainer(model, opt, scheduler=sched)
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=3)
        assert np.isclose(opt.lr, 0.125)


class TestTrainingHistory:
    def test_time_per_epoch(self):
        history = TrainingHistory(epoch_seconds=[1.0, 3.0])
        assert history.time_per_epoch == 2.0
        assert history.total_time == 4.0

    def test_empty(self):
        assert TrainingHistory().time_per_epoch == 0.0
