"""Tests for trainer console output and history bookkeeping details."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.defenses import Trainer
from repro.models import mnist_mlp
from repro.optim import Adam


@pytest.fixture
def setup(digits_small):
    train, test = digits_small
    model = mnist_mlp(seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
    return trainer, DataLoader(train, batch_size=64, rng=0), test


class TestVerboseOutput:
    def test_prints_progress_lines(self, setup, capsys):
        trainer, loader, _test = setup
        trainer.fit(loader, epochs=2, verbose=True)
        out = capsys.readouterr().out
        assert "[vanilla] epoch 1" in out
        assert "loss=" in out

    def test_prints_accuracy_when_evaluated(self, setup, capsys):
        trainer, loader, test = setup
        x, y = test.arrays()
        trainer.fit(
            loader,
            epochs=2,
            eval_fn=lambda m: (m.predict(x) == y).mean(),
            eval_every=1,
            verbose=True,
        )
        assert "acc=" in capsys.readouterr().out

    def test_silent_by_default(self, setup, capsys):
        trainer, loader, _test = setup
        trainer.fit(loader, epochs=1)
        assert capsys.readouterr().out == ""


class TestHistoryDetails:
    def test_epoch_seconds_positive(self, setup):
        trainer, loader, _test = setup
        history = trainer.fit(loader, epochs=3)
        assert all(s > 0 for s in history.epoch_seconds)

    def test_eval_accuracy_keyed_by_global_epoch(self, setup):
        trainer, loader, test = setup
        x, y = test.arrays()
        trainer.fit(loader, epochs=2)  # epochs 1-2, no eval
        history = trainer.fit(
            loader,
            epochs=2,
            eval_fn=lambda m: (m.predict(x) == y).mean(),
            eval_every=1,
        )
        # Second fit covers global epochs 3 and 4.
        assert set(history.eval_accuracy) == {3, 4}
