"""Tests for security curves."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.eval import security_curve, security_curves


def builder(model, eps):
    return FGSM(model, eps)


class TestSecurityCurve:
    def test_monotone_decreasing_for_honest_model(
        self, trained_mlp, digits_small
    ):
        _train, test = digits_small
        x, y = test.arrays()
        curve = security_curve(
            trained_mlp, builder, x, y, [0.05, 0.15, 0.3]
        )
        assert len(curve) == 3
        assert curve[0] >= curve[1] >= curve[2] - 0.05

    def test_small_eps_near_clean(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        clean = (trained_mlp.predict(x) == y).mean()
        curve = security_curve(trained_mlp, builder, x, y, [0.005])
        assert abs(curve[0] - clean) < 0.15

    def test_empty_epsilons_rejected(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        with pytest.raises(ValueError):
            security_curve(trained_mlp, builder, x, y, [])

    def test_non_positive_eps_rejected(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        with pytest.raises(ValueError):
            security_curve(trained_mlp, builder, x, y, [0.1, 0.0])


class TestSecurityCurves:
    def test_per_model_keys(self, trained_mlp, fresh_mlp, tiny_batch):
        x, y = tiny_batch
        curves = security_curves(
            {"trained": trained_mlp, "fresh": fresh_mlp},
            builder,
            x,
            y,
            [0.1],
        )
        assert set(curves) == {"trained", "fresh"}
        assert all(len(c) == 1 for c in curves.values())
