"""Tests for gradient-masking diagnostics."""

import numpy as np
import pytest

from repro.eval import MaskingReport, gradient_masking_report


class TestOnHonestModel:
    def test_undefended_model_not_flagged(self, trained_mlp, digits_small):
        """A vanilla-trained model has honest gradients: iterative attacks
        beat FGSM, which beats noise — no flags."""
        _train, test = digits_small
        x, y = test.arrays()
        report = gradient_masking_report(
            trained_mlp, x, y, epsilon=0.2, num_steps=5
        )
        assert not report.suspicious
        assert report.bim <= report.fgsm + 0.05
        assert report.noise >= report.fgsm

    def test_render_mentions_values(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        report = gradient_masking_report(
            trained_mlp, x, y, epsilon=0.2, num_steps=3
        )
        text = report.render()
        assert "clean=" in text and "bim=" in text
        assert "no gradient-masking indicators" in text


class TestFlagLogic:
    def test_iterative_weaker_flagged(self):
        report = MaskingReport(
            epsilon=0.2, clean=0.95, fgsm=0.2, bim=0.6, noise=0.9,
            epsilon_sweep=[0.5, 0.3, 0.1],
        )
        # Re-run the flagging logic by constructing through the function's
        # rules: simulate via direct comparison used in the module.
        assert report.flags == []  # raw dataclass has no flags

    def test_masking_model_flagged(self, digits_small):
        """A model whose gradients are misleading (random fixed direction)
        must trip the noise-vs-gradient flag: gradient attacks do no better
        than random noise even though the model is clean-accurate."""
        _train, test = digits_small
        x, y = test.arrays()
        x, y = x[:40], y[:40]

        from repro.autograd import Tensor

        rng = np.random.default_rng(0)
        random_direction = Tensor(
            rng.normal(size=(x[0].size, 10)) * 0.01
        )

        class MisleadingGradModel:
            """Clean-accurate oracle whose logit surface carries a random,
            useless gradient: any perturbation beyond 0.05 breaks it, and
            following the gradient is no better than noise."""

            num_classes = 10

            def eval(self):
                return self

            def __call__(self, tensor):
                flat = tensor.reshape((tensor.shape[0], -1))
                return flat @ random_direction

            def predict(self, batch):
                batch = np.asarray(batch)
                predictions = []
                for img in batch:
                    deviations = (
                        np.abs(x - img).reshape(len(x), -1).max(axis=1)
                    )
                    nearest = int(deviations.argmin())
                    if deviations[nearest] < 0.05:
                        predictions.append(y[nearest])
                    else:
                        predictions.append((y[nearest] + 1) % 10)
                return np.asarray(predictions)

        report = gradient_masking_report(
            MisleadingGradModel(), x, y, epsilon=0.2, num_steps=2, rng=0
        )
        assert report.suspicious
        assert any("noise" in flag for flag in report.flags)
