"""Tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    random_guess_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            accuracy(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            accuracy(np.array([]), np.array([]))

    @given(
        labels=st.lists(st.integers(0, 4), min_size=1, max_size=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounds(self, labels):
        labels = np.array(labels)
        predictions = np.roll(labels, 1)
        value = accuracy(predictions, labels)
        assert 0.0 <= value <= 1.0


class TestConfusionMatrix:
    def test_diagonal_for_perfect(self):
        y = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(y, y, 3)
        assert np.array_equal(np.diag(matrix), [1, 1, 2])
        assert matrix.sum() == 4

    def test_off_diagonal(self):
        matrix = confusion_matrix(np.array([1]), np.array([0]), 2)
        assert matrix[0, 1] == 1

    def test_rows_are_true_class(self):
        matrix = confusion_matrix(
            np.array([1, 1, 1]), np.array([0, 0, 1]), 2
        )
        assert matrix[0].sum() == 2
        assert matrix[1].sum() == 1


class TestPerClass:
    def test_values(self):
        predictions = np.array([0, 0, 1, 2])
        labels = np.array([0, 1, 1, 2])
        per = per_class_accuracy(predictions, labels, 3)
        assert per[0] == 1.0
        assert per[1] == 0.5
        assert per[2] == 1.0

    def test_absent_class_zero(self):
        per = per_class_accuracy(np.array([0]), np.array([0]), 3)
        assert per[2] == 0.0


class TestRandomGuess:
    def test_ten_classes(self):
        assert random_guess_accuracy(10) == 0.1

    def test_invalid(self):
        with pytest.raises(ValueError):
            random_guess_accuracy(0)
