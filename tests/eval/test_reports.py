"""Tests for report rendering."""

import pytest

from repro.eval import format_curve, format_percent, format_table


class TestFormatPercent:
    def test_paper_style(self):
        assert format_percent(0.9421) == "94.21%"
        assert format_percent(0.0) == "0.00%"
        assert format_percent(1.0) == "100.00%"


class TestFormatTable:
    def test_contains_cells_and_headers(self):
        text = format_table(
            ["method", "acc"], [["fgsm", "94%"], ["bim", "12%"]],
            title="Results",
        )
        assert "Results" in text
        assert "method" in text
        assert "fgsm" in text
        assert "12%" in text

    def test_alignment(self):
        text = format_table(["a", "b"], [["xxxx", "y"]])
        lines = text.splitlines()
        # All rows equal width.
        assert len(set(len(line) for line in lines)) == 1

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatCurve:
    def test_includes_points_and_sparkline(self):
        text = format_curve(
            [1, 2, 3], [0.9, 0.5, 0.1], x_label="N", y_label="acc"
        )
        assert "90.00%" in text
        assert "10.00%" in text
        assert any(ch in text for ch in "▁▂▃▄▅▆▇█")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_curve([1, 2], [0.5], "x", "y")

    def test_flat_curve_no_crash(self):
        text = format_curve([1, 2], [0.5, 0.5], "x", "y")
        assert "50.00%" in text
