"""Tests for the robustness measurement protocols."""

import numpy as np
import pytest

from repro.attacks import FGSM, RandomNoise
from repro.eval import (
    RobustnessEvaluator,
    attack_iteration_sweep,
    clean_accuracy,
    intermediate_iterate_curve,
    robust_accuracy,
)


class TestCleanAccuracy:
    def test_matches_manual(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        manual = (trained_mlp.predict(x) == y).mean()
        assert clean_accuracy(trained_mlp, x, y) == pytest.approx(manual)

    def test_batching_invariant(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        a = clean_accuracy(trained_mlp, x, y, batch_size=7)
        b = clean_accuracy(trained_mlp, x, y, batch_size=1000)
        assert a == pytest.approx(b)


class TestRobustAccuracy:
    def test_attack_lowers_accuracy(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        clean = clean_accuracy(trained_mlp, x, y)
        robust = robust_accuracy(trained_mlp, FGSM(trained_mlp, 0.25), x, y)
        assert robust < clean

    def test_batching_invariant_for_deterministic_attack(
        self, trained_mlp, digits_small
    ):
        _train, test = digits_small
        x, y = test.arrays()
        attack = FGSM(trained_mlp, 0.1)
        a = robust_accuracy(trained_mlp, attack, x, y, batch_size=13)
        b = robust_accuracy(trained_mlp, attack, x, y, batch_size=500)
        assert a == pytest.approx(b)


class TestIterationSweep:
    def test_returns_requested_counts(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        sweep = attack_iteration_sweep(trained_mlp, x, y, 0.2, [1, 3])
        assert set(sweep) == {1, 3}

    def test_more_iterations_weakly_stronger(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        sweep = attack_iteration_sweep(trained_mlp, x, y, 0.2, [1, 10])
        assert sweep[10] <= sweep[1] + 0.05


class TestIntermediateCurve:
    def test_length(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        curve = intermediate_iterate_curve(
            trained_mlp, x, y, 0.2, num_steps=6
        )
        assert len(curve) == 6

    def test_last_point_matches_full_attack(self, trained_mlp, digits_small):
        from repro.attacks import BIM

        _train, test = digits_small
        x, y = test.arrays()
        curve = intermediate_iterate_curve(
            trained_mlp, x, y, 0.2, num_steps=5
        )
        full = robust_accuracy(
            trained_mlp, BIM(trained_mlp, 0.2, num_steps=5), x, y
        )
        assert curve[-1] == pytest.approx(full)

    def test_trend_decreasing(self, trained_mlp, digits_small):
        """Figure 2 shape: accuracy decreases as iterates accumulate."""
        _train, test = digits_small
        x, y = test.arrays()
        curve = intermediate_iterate_curve(
            trained_mlp, x, y, 0.25, num_steps=8
        )
        assert curve[-1] <= curve[0]


class TestEvaluator:
    def test_paper_suite_columns(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        suite = RobustnessEvaluator.paper_suite(0.2)
        results = suite.evaluate(trained_mlp, x, y)
        assert set(results) == {"original", "fgsm", "bim10", "bim30"}

    def test_none_builder_means_clean(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        suite = RobustnessEvaluator({"clean": lambda m: None})
        results = suite.evaluate(trained_mlp, x, y)
        assert results["clean"] == pytest.approx(
            clean_accuracy(trained_mlp, x, y)
        )

    def test_custom_suite(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        suite = RobustnessEvaluator(
            {"noise": lambda m: RandomNoise(m, 0.1, rng=0)}
        )
        results = suite.evaluate(trained_mlp, x, y)
        assert 0.0 <= results["noise"] <= 1.0

    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            RobustnessEvaluator({})

    def test_ordering_clean_ge_fgsm_ge_bim(self, trained_mlp, digits_small):
        """On an undefended model the paper's column ordering must hold."""
        _train, test = digits_small
        x, y = test.arrays()
        res = RobustnessEvaluator.paper_suite(0.2).evaluate(
            trained_mlp, x, y
        )
        assert res["original"] >= res["fgsm"] >= res["bim10"] - 0.02


class TestFromSpecs:
    def test_spec_suite_keys_and_values(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        suite = RobustnessEvaluator.from_specs(
            ("original", "fgsm", "bim:num_steps=3"), epsilon=0.2
        )
        results = suite.evaluate(trained_mlp, x, y)
        assert set(results) == {"original", "fgsm", "bim:num_steps=3"}
        assert all(0.0 <= v <= 1.0 for v in results.values())

    def test_paper_suite_is_spec_suite(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        paper = RobustnessEvaluator.paper_suite(0.2).evaluate(
            trained_mlp, x, y
        )
        specs = RobustnessEvaluator.from_specs(
            ("original", "fgsm", "bim10", "bim30"), epsilon=0.2
        ).evaluate(trained_mlp, x, y)
        assert paper == specs

    def test_unknown_spec_fails_fast(self):
        with pytest.raises(KeyError, match="unknown attack"):
            RobustnessEvaluator.from_specs(("cw",), epsilon=0.2)
