"""Tests for transfer-attack evaluation."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.data import DataLoader
from repro.defenses import Trainer
from repro.eval import clean_accuracy, transfer_accuracy, transfer_matrix
from repro.models import mnist_mlp
from repro.optim import Adam


@pytest.fixture(scope="module")
def surrogate(digits_small_module):
    train, _ = digits_small_module
    model = mnist_mlp(seed=5)
    Trainer(model, Adam(model.parameters(), lr=2e-3)).fit(
        DataLoader(train, batch_size=64, rng=0), epochs=8
    )
    return model


@pytest.fixture(scope="module")
def digits_small_module():
    from repro.data import load_dataset

    return load_dataset("digits", train_per_class=20, test_per_class=10, seed=0)


class TestTransferAccuracy:
    def test_transfer_hurts_but_less_than_whitebox(
        self, trained_mlp, surrogate, digits_small_module
    ):
        _train, test = digits_small_module
        x, y = test.arrays()
        eps = 0.25
        clean = clean_accuracy(trained_mlp, x, y)
        transferred = transfer_accuracy(
            trained_mlp, FGSM(surrogate, eps), x, y
        )
        whitebox = transfer_accuracy(
            trained_mlp, FGSM(trained_mlp, eps), x, y
        )
        assert transferred < clean           # transfer does real damage
        assert whitebox <= transferred + 0.05  # white-box at least as strong

    def test_batching_invariant(self, trained_mlp, surrogate, digits_small_module):
        _train, test = digits_small_module
        x, y = test.arrays()
        attack = FGSM(surrogate, 0.1)
        a = transfer_accuracy(trained_mlp, attack, x, y, batch_size=7)
        b = transfer_accuracy(trained_mlp, attack, x, y, batch_size=500)
        assert a == pytest.approx(b)


class TestTransferMatrix:
    def test_full_grid(self, trained_mlp, surrogate, digits_small_module):
        _train, test = digits_small_module
        x, y = test.arrays()
        models = {"victim": trained_mlp, "surrogate": surrogate}
        grid = transfer_matrix(
            models, lambda m: FGSM(m, 0.2), x, y
        )
        assert set(grid) == {"victim", "surrogate"}
        for row in grid.values():
            assert set(row) == {"victim", "surrogate"}
            for value in row.values():
                assert 0.0 <= value <= 1.0

    def test_diagonal_is_whitebox(self, trained_mlp, digits_small_module):
        _train, test = digits_small_module
        x, y = test.arrays()
        grid = transfer_matrix(
            {"m": trained_mlp}, lambda m: FGSM(m, 0.2), x, y
        )
        direct = transfer_accuracy(
            trained_mlp, FGSM(trained_mlp, 0.2), x, y
        )
        assert grid["m"]["m"] == pytest.approx(direct)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            transfer_matrix({}, lambda m: None, np.zeros((1, 1, 4, 4)), np.zeros(1))
