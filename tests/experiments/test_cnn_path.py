"""The experiment pipeline must also work with the ConvNet models.

The headline benchmarks use the MLP for speed; these tests pin that the
same pipeline runs end-to-end with the CNN architectures (the paper's
model family), so a full-fidelity CNN rerun is a config change away.
"""

import pytest

from repro.eval import RobustnessEvaluator
from repro.experiments import ClassifierPool, smoke_scale


@pytest.fixture(scope="module")
def cnn_pool():
    config = smoke_scale("digits", epochs=3, warmup_epochs=1).with_overrides(
        model="small_cnn"
    )
    return ClassifierPool(config)


class TestCnnPipeline:
    def test_trains_proposed_defense(self, cnn_pool):
        defense = cnn_pool.get("proposed")
        assert defense.time_per_epoch > 0

    def test_evaluates_paper_suite(self, cnn_pool):
        defense = cnn_pool.get("proposed")
        suite = RobustnessEvaluator.paper_suite(cnn_pool.epsilon)
        results = suite.evaluate(
            defense.model, cnn_pool.test_x, cnn_pool.test_y
        )
        assert set(results) == {"original", "fgsm", "bim10", "bim30"}

    def test_cnn_costs_more_than_mlp(self, cnn_pool):
        mlp_pool = ClassifierPool(
            smoke_scale("digits", epochs=3, warmup_epochs=1)
        )
        cnn_time = cnn_pool.get("vanilla").time_per_epoch
        mlp_time = mlp_pool.get("vanilla").time_per_epoch
        assert cnn_time > mlp_time
