"""Tests for experiment configuration."""

import pytest

from repro.experiments import ExperimentConfig, paper_scale, smoke_scale


class TestValidation:
    def test_defaults_valid(self):
        ExperimentConfig()

    def test_bad_split(self):
        with pytest.raises(ValueError):
            ExperimentConfig(train_per_class=0)

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epochs=0)

    def test_warmup_below_epochs(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epochs=5, warmup_epochs=5)


class TestEpsilon:
    def test_dataset_default(self):
        assert ExperimentConfig(dataset="digits").resolved_epsilon == 0.25
        assert ExperimentConfig(dataset="fashion").resolved_epsilon == 0.15

    def test_explicit_override(self):
        assert ExperimentConfig(epsilon=0.1).resolved_epsilon == 0.1


class TestPresets:
    def test_smoke_is_small(self):
        cfg = smoke_scale()
        assert cfg.train_per_class <= 50
        assert cfg.epochs <= 10

    def test_paper_is_larger(self):
        assert paper_scale().epochs > smoke_scale().epochs

    def test_overrides(self):
        cfg = smoke_scale(epochs=7)
        assert cfg.epochs == 7

    def test_with_overrides_copy(self):
        cfg = smoke_scale()
        other = cfg.with_overrides(seed=9)
        assert other.seed == 9
        assert cfg.seed == 0
        assert other.dataset == cfg.dataset

    def test_frozen(self):
        with pytest.raises(Exception):
            smoke_scale().epochs = 3
