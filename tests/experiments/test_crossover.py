"""Tests for the budget-crossover study."""

import math

import pytest

from repro.experiments import smoke_scale
from repro.experiments.crossover import (
    CrossoverResult,
    run_crossover_study,
)


@pytest.fixture(scope="module")
def result():
    return run_crossover_study(
        smoke_scale("digits"),
        epsilons=(0.1, 0.2),
        methods=("vanilla", "fgsm_adv"),
        attack_steps=3,
    )


class TestRunner:
    def test_grid_shape(self, result):
        assert result.epsilons == [0.1, 0.2]
        assert set(result.accuracy) == {"vanilla", "fgsm_adv"}
        for values in result.accuracy.values():
            assert len(values) == 2
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_render(self, result):
        text = result.render()
        assert "Crossover study" in text
        assert "0.1" in text

    def test_save(self, result, tmp_path):
        from repro.utils import load_json

        path = str(tmp_path / "crossover.json")
        result.save(path)
        assert load_json(path)["epsilons"] == [0.1, 0.2]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_crossover_study(smoke_scale("digits"), epsilons=())
        with pytest.raises(ValueError):
            run_crossover_study(smoke_scale("digits"), epsilons=(0.0,))


class TestCrossoverMath:
    def _fake(self):
        result = CrossoverResult(dataset="digits")
        result.epsilons = [0.1, 0.2, 0.3]
        result.accuracy = {
            "a": [0.9, 0.6, 0.3],
            "b": [0.8, 0.7, 0.5],
        }
        return result

    def test_gap(self):
        result = self._fake()
        assert result.gap("a", "b") == pytest.approx([0.1, -0.1, -0.2])

    def test_crossover_found(self):
        assert self._fake().crossover_epsilon("a", "b") == pytest.approx(0.2)

    def test_crossover_never(self):
        result = CrossoverResult(dataset="digits")
        result.epsilons = [0.1, 0.2]
        result.accuracy = {"a": [0.9, 0.8], "b": [0.5, 0.4]}
        assert math.isnan(result.crossover_epsilon("a", "b"))
