"""Tests for ClassifierPool save/load."""

import numpy as np
import pytest

from repro.experiments import ClassifierPool, smoke_scale


@pytest.fixture(scope="module")
def pool():
    return ClassifierPool(smoke_scale("digits"))


class TestPersistence:
    def test_roundtrip_weights(self, pool, tmp_path):
        defense = pool.get("vanilla")
        pool.save(str(tmp_path))

        fresh = ClassifierPool(smoke_scale("digits"))
        restored = fresh.load(str(tmp_path))
        assert restored >= 1
        loaded = fresh.get("vanilla")  # must come from cache, not training
        for (n1, p1), (n2, p2) in zip(
            defense.model.named_parameters(),
            loaded.model.named_parameters(),
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_roundtrip_history(self, pool, tmp_path):
        defense = pool.get("vanilla")
        pool.save(str(tmp_path))
        fresh = ClassifierPool(smoke_scale("digits"))
        fresh.load(str(tmp_path))
        loaded = fresh.get("vanilla")
        assert loaded.history.epoch_seconds == pytest.approx(
            defense.history.epoch_seconds
        )

    def test_load_missing_directory(self, pool, tmp_path):
        assert pool.load(str(tmp_path / "nothing_here")) == 0

    def test_loaded_model_predicts_identically(self, pool, tmp_path):
        defense = pool.get("vanilla")
        pool.save(str(tmp_path))
        fresh = ClassifierPool(smoke_scale("digits"))
        fresh.load(str(tmp_path))
        loaded = fresh.get("vanilla")
        x = pool.test_x[:16]
        assert np.array_equal(
            defense.model.predict(x), loaded.model.predict(x)
        )
