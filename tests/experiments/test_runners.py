"""Integration tests for the experiment runners (smoke scale).

These run the real Figure 1 / Figure 2 / Table I pipelines end-to-end on a
tiny configuration — training included — so they are the slowest tests in
the suite, but they guard the paper-artefact code paths.
"""

import numpy as np
import pytest

from repro.experiments import (
    ClassifierPool,
    FIGURE1_CLASSIFIERS,
    TABLE1_METHODS,
    run_figure1,
    run_figure2,
    run_reset_interval_ablation,
    run_step_size_ablation,
    run_table1,
    smoke_scale,
)


@pytest.fixture(scope="module")
def pool():
    """One shared pool: each defense trains once for all runner tests."""
    return ClassifierPool(smoke_scale("digits"))


@pytest.fixture(scope="module")
def config(pool):
    return pool.config


class TestClassifierPool:
    def test_caches_trained_models(self, pool):
        a = pool.get("vanilla")
        b = pool.get("vanilla")
        assert a is b

    def test_overrides_bypass_cache(self, pool):
        base = pool.get("proposed")
        variant = pool.get("proposed", reset_interval=1)
        assert variant is not base
        assert pool.get("proposed") is base

    def test_epsilon_resolution(self, pool):
        assert pool.epsilon == 0.25

    def test_history_records_timing(self, pool):
        defense = pool.get("vanilla")
        assert defense.time_per_epoch > 0.0


class TestFigure1Runner:
    def test_curves_for_all_classifiers(self, config, pool):
        result = run_figure1(config, pool=pool, iteration_counts=(1, 2))
        assert set(result.curves) == set(FIGURE1_CLASSIFIERS)
        for curve in result.curves.values():
            assert len(curve) == 2
            assert all(0.0 <= v <= 1.0 for v in curve)

    def test_render_and_save(self, config, pool, tmp_path):
        result = run_figure1(config, pool=pool, iteration_counts=(1,))
        text = result.render()
        assert "Figure 1" in text
        path = str(tmp_path / "fig1.json")
        result.save(path)
        from repro.utils import load_json

        loaded = load_json(path)
        assert loaded["dataset"] == "digits"


class TestFigure2Runner:
    def test_curve_lengths(self, config, pool):
        result = run_figure2(config, pool=pool, num_steps=3)
        for curve in result.curves.values():
            assert len(curve) == 3

    def test_render(self, config, pool):
        result = run_figure2(config, pool=pool, num_steps=2)
        assert "Figure 2" in result.render()


class TestTable1Runner:
    def test_grid_complete(self, config, pool):
        result = run_table1(config, pool=pool)
        assert set(result.accuracy) == set(TABLE1_METHODS)
        for row in result.accuracy.values():
            assert set(row) == {"original", "fgsm", "bim10", "bim30"}
        assert set(result.time_per_epoch) == set(TABLE1_METHODS)

    def test_timing_ordering_iter_vs_single(self, config, pool):
        """Even at smoke scale, BIM(30)-Adv must cost more per epoch than
        the single-step methods — the paper's structural claim."""
        result = run_table1(config, pool=pool)
        assert (
            result.time_per_epoch["bim30_adv"]
            > result.time_per_epoch["proposed"]
        )
        assert (
            result.time_per_epoch["bim30_adv"]
            > result.time_per_epoch["bim10_adv"]
        )

    def test_improvement_and_speedup_helpers(self, config, pool):
        result = run_table1(config, pool=pool)
        gain = result.improvement_over("proposed", "atda", "bim10")
        assert -1.0 <= gain <= 1.0
        speedup = result.speedup_over("proposed", "bim30_adv")
        assert speedup > 0.0

    def test_render_contains_methods(self, config, pool):
        text = run_table1(config, pool=pool).render()
        for name in TABLE1_METHODS:
            assert name in text


class TestAblationRunners:
    def test_step_size_sweep(self, config, pool):
        result = run_step_size_ablation(
            config, pool=pool, step_fractions=(0.5, 1.0)
        )
        assert result.values == [0.5, 1.0]
        assert len(result.accuracy) == 2
        assert "step_size" in result.render()

    def test_reset_interval_sweep(self, config, pool):
        result = run_reset_interval_ablation(
            config, pool=pool, reset_intervals=(1, 0)
        )
        assert result.values == [1.0, 0.0]
        assert all("bim10" in acc for acc in result.accuracy)
