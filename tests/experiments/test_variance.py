"""Tests for the multi-seed variance study."""

import numpy as np
import pytest

from repro.experiments import (
    VarianceResult,
    run_variance_study,
    smoke_scale,
)


@pytest.fixture(scope="module")
def result():
    return run_variance_study(
        smoke_scale("digits"),
        seeds=(0, 1),
        methods=("vanilla", "fgsm_adv"),
    )


class TestRunVarianceStudy:
    def test_all_methods_and_seeds_recorded(self, result):
        assert set(result.runs) == {"vanilla", "fgsm_adv"}
        for method_runs in result.runs.values():
            for column_values in method_runs.values():
                assert len(column_values) == 2

    def test_mean_std_consistent(self, result):
        values = result.runs["vanilla"]["original"]
        assert result.mean("vanilla", "original") == pytest.approx(
            np.mean(values)
        )
        assert result.std("vanilla", "original") == pytest.approx(
            np.std(values)
        )

    def test_render(self, result):
        text = result.render()
        assert "Variance study" in text
        assert "vanilla" in text
        assert "±" in text

    def test_save(self, result, tmp_path):
        from repro.utils import load_json

        path = str(tmp_path / "variance.json")
        result.save(path)
        payload = load_json(path)
        assert payload["seeds"] == [0, 1]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_variance_study(smoke_scale("digits"), seeds=())


class TestGapSignificance:
    def test_significant_gap(self):
        result = VarianceResult(dataset="digits", epsilon=0.25)
        result.runs = {
            "a": {"bim10": [0.8, 0.82, 0.81]},
            "b": {"bim10": [0.5, 0.52, 0.51]},
        }
        assert result.gap_significant("a", "b", "bim10")

    def test_insignificant_gap(self):
        result = VarianceResult(dataset="digits", epsilon=0.25)
        result.runs = {
            "a": {"bim10": [0.60, 0.50, 0.70]},
            "b": {"bim10": [0.58, 0.48, 0.68]},
        }
        assert not result.gap_significant("a", "b", "bim10")
