"""Shared numeric helpers for the test suite."""

import numpy as np


def box_tol(arr) -> float:
    """Absolute tolerance for l_inf box/ball bound checks, dtype-aware.

    Projections compute ``x + clip(x_adv - x, -eps, eps)``; the subtract
    and re-add each round in the array's dtype, so the recovered
    perturbation can overshoot the bound by a few ulps.  That slack is
    ~1e-16 at float64 (the historical 1e-12 tolerance is kept) but ~1e-8
    at float32, where 1e-12 is far below one ulp of typical pixel values.
    """
    finfo = np.finfo(np.asarray(arr).dtype)
    return max(1e-12, 16.0 * float(finfo.eps))
