"""Tests for the FeatureClassifier wrapper."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import FeatureClassifier, mnist_mlp
from repro.nn import Dense, Flatten, ReLU, Sequential


def make_classifier():
    features = Sequential(Flatten(), Dense(16, 8, rng=0), ReLU())
    head = Dense(8, 3, rng=1)
    return FeatureClassifier(features, head, num_classes=3)


def batch(n=5):
    return np.random.default_rng(0).normal(size=(n, 1, 4, 4))


class TestForward:
    def test_logits_shape(self):
        assert make_classifier()(Tensor(batch())).shape == (5, 3)

    def test_forward_is_head_of_embed(self):
        model = make_classifier()
        x = Tensor(batch())
        direct = model(x).data
        composed = model.head(model.embed(x)).data
        assert np.allclose(direct, composed)

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            FeatureClassifier(Sequential(), Dense(4, 1, rng=0), num_classes=1)


class TestPredict:
    def test_predict_matches_argmax(self):
        model = make_classifier()
        x = batch()
        logits = model(Tensor(x)).data
        assert np.array_equal(model.predict(x), logits.argmax(axis=1))

    def test_predict_builds_no_graph(self):
        model = make_classifier()
        model.predict(batch())
        assert all(p.grad is None for p in model.parameters())

    def test_predict_proba_rows_sum_to_one(self):
        probs = make_classifier().predict_proba(batch())
        assert probs.shape == (5, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_predict_proba_stable_with_large_logits(self):
        model = make_classifier()
        model.head.weight.data *= 1e3
        probs = model.predict_proba(batch())
        assert np.isfinite(probs).all()


class TestTrainedAccuracy:
    def test_trained_model_accurate_on_clean_data(self, trained_mlp, digits_small):
        _train, test = digits_small
        x, y = test.arrays()
        accuracy = (trained_mlp.predict(x) == y).mean()
        assert accuracy > 0.85
