"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import (
    FeatureClassifier,
    MODEL_BUILDERS,
    build_model,
    mnist_cnn,
    mnist_mlp,
    small_cnn,
)


def batch(n=4, size=28, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, 1, size, size))


class TestFactories:
    @pytest.mark.parametrize("factory", [mnist_cnn, mnist_mlp, small_cnn])
    def test_logit_shape(self, factory):
        model = factory(seed=0)
        out = model(Tensor(batch()))
        assert out.shape == (4, 10)

    @pytest.mark.parametrize("factory", [mnist_cnn, mnist_mlp, small_cnn])
    def test_embedding_2d(self, factory):
        model = factory(seed=0)
        emb = model.embed(Tensor(batch()))
        assert emb.ndim == 2
        assert emb.shape[0] == 4

    def test_seed_determinism(self):
        a, b = mnist_mlp(seed=3), mnist_mlp(seed=3)
        assert np.array_equal(
            a.head.weight.data, b.head.weight.data
        )

    def test_different_seeds_differ(self):
        a, b = mnist_mlp(seed=1), mnist_mlp(seed=2)
        assert not np.array_equal(a.head.weight.data, b.head.weight.data)

    def test_custom_classes(self):
        model = mnist_mlp(num_classes=5, seed=0)
        assert model(Tensor(batch())).shape == (4, 5)

    def test_custom_image_size(self):
        model = small_cnn(image_size=14, seed=0)
        assert model(Tensor(batch(size=14))).shape == (4, 10)

    def test_mlp_dropout_variant(self):
        model = mnist_mlp(seed=0, dropout=0.5)
        model.train()
        out1 = model(Tensor(batch())).data
        out2 = model(Tensor(batch())).data
        assert not np.array_equal(out1, out2)  # dropout active
        model.eval()
        out3 = model(Tensor(batch())).data
        out4 = model(Tensor(batch())).data
        assert np.array_equal(out3, out4)


class TestRegistry:
    def test_build_by_name(self):
        model = build_model("small_cnn", seed=0)
        assert isinstance(model, FeatureClassifier)

    def test_all_registered_buildable(self):
        for name in MODEL_BUILDERS:
            assert build_model(name, seed=0).num_classes == 10

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            build_model("resnet152")
