"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestComputeFans:
    def test_dense(self):
        assert init.compute_fans((20, 30)) == (20, 30)

    def test_conv(self):
        # (out, in, kh, kw) -> fan_in = in * kh * kw
        assert init.compute_fans((8, 4, 3, 3)) == (36, 72)

    def test_vector(self):
        assert init.compute_fans((5,)) == (5, 5)

    def test_scalar_raises(self):
        with pytest.raises(ValueError):
            init.compute_fans(())


class TestDeterminism:
    @pytest.mark.parametrize(
        "fn",
        [
            init.xavier_uniform,
            init.xavier_normal,
            init.kaiming_uniform,
            init.kaiming_normal,
        ],
    )
    def test_same_seed_same_weights(self, fn):
        assert np.array_equal(fn((10, 10), rng=3), fn((10, 10), rng=3))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            init.kaiming_uniform((10, 10), rng=1),
            init.kaiming_uniform((10, 10), rng=2),
        )


class TestStatistics:
    def test_zeros_ones(self):
        assert init.zeros((3,)).sum() == 0.0
        assert init.ones((3,)).sum() == 3.0

    def test_uniform_bounds(self):
        w = init.uniform((1000,), -0.5, 0.5, rng=0)
        assert w.min() >= -0.5 and w.max() <= 0.5

    def test_normal_moments(self):
        w = init.normal((20000,), mean=1.0, std=2.0, rng=0)
        assert abs(w.mean() - 1.0) < 0.1
        assert abs(w.std() - 2.0) < 0.1

    def test_xavier_uniform_bound(self):
        fan_in, fan_out = 100, 50
        bound = np.sqrt(6.0 / (fan_in + fan_out))
        w = init.xavier_uniform((fan_in, fan_out), rng=0)
        assert np.abs(w).max() <= bound + 1e-12

    def test_kaiming_normal_std(self):
        fan_in = 400
        w = init.kaiming_normal((fan_in, 200), rng=0)
        assert abs(w.std() - np.sqrt(2.0 / fan_in)) < 0.01
