"""Tests for LayerNorm."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import LayerNorm


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(3.0, 2.0, size=shape))


class TestLayerNorm:
    def test_normalises_per_example(self):
        ln = LayerNorm(8)
        out = ln(randn(4, 8)).data
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-2)

    def test_int_shape_promoted(self):
        assert LayerNorm(5).normalized_shape == (5,)

    def test_multi_dim_suffix(self):
        ln = LayerNorm((4, 4))
        out = ln(randn(2, 4, 4)).data
        assert np.allclose(out.reshape(2, -1).mean(axis=1), 0.0, atol=1e-6)

    def test_affine(self):
        ln = LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 1.0)
        out = ln(randn(8, 4)).data
        assert np.allclose(out.mean(axis=1), 1.0, atol=1e-6)

    def test_no_affine_has_no_params(self):
        ln = LayerNorm(4, affine=False)
        assert len(list(ln.parameters())) == 0
        ln(randn(2, 4))

    def test_train_eval_identical(self):
        """LayerNorm has no batch statistics: train == eval output."""
        ln = LayerNorm(6)
        x = randn(4, 6)
        ln.train()
        out_train = ln(x).data
        ln.eval()
        out_eval = ln(x).data
        assert np.array_equal(out_train, out_eval)

    def test_batch_size_invariance(self):
        """Each example is normalised independently of its batch."""
        ln = LayerNorm(6)
        x = randn(4, 6)
        full = ln(x).data
        single = ln(Tensor(x.data[:1])).data
        assert np.allclose(full[0], single[0])

    def test_wrong_suffix_raises(self):
        with pytest.raises(ValueError, match="trailing shape"):
            LayerNorm(5)(randn(2, 4))

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        x = Tensor(
            np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True
        )
        ln(x).sum().backward()
        assert x.grad is not None
        assert ln.gamma.grad is not None
