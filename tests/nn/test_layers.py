"""Tests for the layer zoo (dense, conv, pooling, activations, shape)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AvgPool2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape))


class TestDense:
    def test_output_shape(self):
        assert Dense(4, 7, rng=0)(randn(5, 4)).shape == (5, 7)

    def test_affine_math(self):
        layer = Dense(2, 2, rng=0)
        layer.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias.data = np.array([1.0, -1.0])
        out = layer(Tensor(np.array([[3.0, 4.0]])))
        assert np.allclose(out.data, [[4.0, 7.0]])

    def test_no_bias(self):
        layer = Dense(3, 2, bias=False, rng=0)
        assert layer.bias is None
        names = dict(layer.named_parameters()).keys()
        assert names == {"weight"}

    def test_wrong_input_dim_raises(self):
        with pytest.raises(ValueError, match="last dim"):
            Dense(4, 2, rng=0)(randn(3, 5))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError, match="weight_init"):
            Dense(3, 3, weight_init="nope")

    def test_seeded_init_deterministic(self):
        a, b = Dense(4, 4, rng=7), Dense(4, 4, rng=7)
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_gradients_reach_parameters(self):
        layer = Dense(3, 2, rng=0)
        layer(randn(4, 3)).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestConv2d:
    def test_output_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=0)
        assert layer(randn(2, 3, 10, 10)).shape == (2, 8, 10, 10)

    def test_stride(self):
        layer = Conv2d(1, 2, kernel_size=2, stride=2, rng=0)
        assert layer(randn(1, 1, 8, 8)).shape == (1, 2, 4, 4)

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError, match="channels"):
            Conv2d(3, 4, kernel_size=3, rng=0)(randn(1, 2, 8, 8))

    def test_non_nchw_raises(self):
        with pytest.raises(ValueError):
            Conv2d(1, 2, kernel_size=3, rng=0)(randn(8, 8))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel_size=3, padding=-1)

    def test_no_bias(self):
        layer = Conv2d(1, 2, kernel_size=3, bias=False, rng=0)
        assert layer.bias is None


class TestPoolingLayers:
    def test_max_pool_shape(self):
        assert MaxPool2d(2)(randn(1, 2, 8, 8)).shape == (1, 2, 4, 4)

    def test_avg_pool_shape(self):
        assert AvgPool2d(4)(randn(1, 2, 8, 8)).shape == (1, 2, 2, 2)

    def test_stride_defaults_to_kernel(self):
        assert MaxPool2d(3).stride == 3

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)


class TestActivationLayers:
    @pytest.mark.parametrize(
        "layer", [ReLU(), LeakyReLU(0.2), Sigmoid(), Tanh(), Softmax()]
    )
    def test_preserves_shape(self, layer):
        assert layer(randn(3, 5)).shape == (3, 5)

    def test_softmax_normalises(self):
        out = Softmax()(randn(3, 5))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_relu_clamps(self):
        assert ReLU()(Tensor([-1.0, 1.0])).data.min() == 0.0


class TestDropout:
    def test_identity_in_eval(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = randn(4, 4)
        assert np.array_equal(layer(x).data, x.data)

    def test_zero_rate_is_identity(self):
        layer = Dropout(0.0, rng=0)
        x = randn(4, 4)
        assert np.array_equal(layer(x).data, x.data)

    def test_drops_and_scales_in_train(self):
        layer = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        dropped = float((out == 0.0).mean())
        assert 0.4 < dropped < 0.6
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/(1-0.5)

    def test_expectation_preserved(self):
        layer = Dropout(0.3, rng=0)
        x = Tensor(np.ones((200, 200)))
        assert abs(layer(x).data.mean() - 1.0) < 0.05

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestShapeLayers:
    def test_flatten(self):
        assert Flatten()(randn(2, 3, 4, 5)).shape == (2, 60)

    def test_reshape(self):
        assert Reshape(4, 5)(randn(2, 20)).shape == (2, 4, 5)


class TestSequential:
    def test_chains(self):
        net = Sequential(Dense(4, 8, rng=0), ReLU(), Dense(8, 2, rng=1))
        assert net(randn(3, 4)).shape == (3, 2)

    def test_len_iter_getitem(self):
        net = Sequential(ReLU(), Tanh())
        assert len(net) == 2
        assert isinstance(net[1], Tanh)
        assert [type(m) for m in net] == [ReLU, Tanh]

    def test_append(self):
        net = Sequential()
        net.append(ReLU())
        assert len(net) == 1

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential(lambda x: x)
