"""Tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    CrossEntropyLoss,
    MSELoss,
    NLLLoss,
    cross_entropy,
    mse_loss,
    nll_loss,
    one_hot,
)


def logits(n=4, c=5, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=(n, c)))


class TestOneHot:
    def test_basic(self):
        enc = one_hot(np.array([0, 2]), 3)
        assert np.array_equal(enc, [[1, 0, 0], [0, 0, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError, match="out of range"):
            one_hot(np.array([-1]), 3)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_accepts_tensor(self):
        enc = one_hot(Tensor(np.array([1.0])), 2)
        assert np.array_equal(enc, [[0, 1]])

    @given(
        labels=st.lists(st.integers(0, 9), min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_rows_sum_to_one(self, labels):
        enc = one_hot(np.array(labels), 10)
        assert np.allclose(enc.sum(axis=1), 1.0)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        x = logits()
        y = np.array([0, 1, 2, 3])
        manual = -np.log(
            np.exp(x.data)[np.arange(4), y] / np.exp(x.data).sum(axis=1)
        ).mean()
        assert np.isclose(cross_entropy(x, y).item(), manual)

    def test_perfect_prediction_near_zero(self):
        x = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        assert cross_entropy(x, np.array([0, 1])).item() < 1e-6

    def test_uniform_logits_log_c(self):
        x = Tensor(np.zeros((3, 10)))
        assert np.isclose(
            cross_entropy(x, np.zeros(3, dtype=int)).item(), np.log(10)
        )

    def test_reductions(self):
        x = logits()
        y = np.array([0, 1, 2, 3])
        per = cross_entropy(x, y, reduction="none")
        assert per.shape == (4,)
        assert np.isclose(
            cross_entropy(x, y, reduction="sum").item(), per.data.sum()
        )
        assert np.isclose(
            cross_entropy(x, y, reduction="mean").item(), per.data.mean()
        )

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError, match="reduction"):
            cross_entropy(logits(), np.zeros(4, dtype=int), reduction="max")

    def test_label_smoothing_increases_loss_on_confident_preds(self):
        x = Tensor(np.array([[50.0, 0.0]]))
        y = np.array([0])
        plain = cross_entropy(x, y).item()
        smoothed = cross_entropy(x, y, label_smoothing=0.1).item()
        assert smoothed > plain

    def test_label_smoothing_bounds(self):
        with pytest.raises(ValueError):
            cross_entropy(logits(), np.zeros(4, dtype=int), label_smoothing=1.5)

    def test_wrong_logit_ndim(self):
        with pytest.raises(ValueError, match=r"\(N, C\)"):
            cross_entropy(Tensor(np.zeros(5)), np.array([0]))

    def test_gradients(self):
        y = np.array([0, 2, 1])
        check_gradients(
            lambda a: cross_entropy(a, y),
            [Tensor(np.random.default_rng(0).normal(size=(3, 4)))],
        )

    def test_gradient_is_softmax_minus_onehot(self):
        x = logits(2, 3)
        x.requires_grad = True
        y = np.array([0, 2])
        cross_entropy(x, y, reduction="sum").backward()
        softmax = np.exp(x.data) / np.exp(x.data).sum(axis=1, keepdims=True)
        expected = softmax - one_hot(y, 3)
        assert np.allclose(x.grad, expected)

    def test_stable_with_huge_logits(self):
        x = Tensor(np.array([[1e4, -1e4]]))
        assert np.isfinite(cross_entropy(x, np.array([1])).item())


class TestNLL:
    def test_matches_cross_entropy(self):
        from repro.autograd import log_softmax

        x = logits()
        y = np.array([0, 1, 2, 3])
        assert np.isclose(
            nll_loss(log_softmax(x), y).item(), cross_entropy(x, y).item()
        )


class TestMSE:
    def test_value(self):
        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([0.0, 4.0]))
        assert np.isclose(mse_loss(a, b).item(), (1.0 + 4.0) / 2)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mse_loss(Tensor(np.zeros(2)), Tensor(np.zeros(3)))

    def test_gradients(self):
        target = np.random.default_rng(1).normal(size=(3, 2))
        check_gradients(
            lambda a: mse_loss(a, target),
            [Tensor(np.random.default_rng(0).normal(size=(3, 2)))],
        )


class TestModuleWrappers:
    def test_cross_entropy_module(self):
        loss = CrossEntropyLoss()(logits(), np.array([0, 1, 2, 3]))
        assert loss.shape == ()

    def test_nll_module(self):
        from repro.autograd import log_softmax

        loss = NLLLoss()(log_softmax(logits()), np.array([0, 1, 2, 3]))
        assert np.isfinite(loss.item())

    def test_mse_module(self):
        loss = MSELoss()(Tensor(np.zeros(3)), Tensor(np.ones(3)))
        assert loss.item() == 1.0
