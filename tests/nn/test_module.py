"""Tests for the Module/Parameter system."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Dense, Module, Parameter, ReLU, Sequential
from repro.runtime import compute_dtype


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Dense(4, 3, rng=0)
        self.fc2 = Dense(3, 2, rng=1)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestParameter:
    def test_requires_grad(self):
        assert Parameter(np.ones(3)).requires_grad

    def test_adopts_policy_dtype(self):
        # Parameters always carry the active policy's compute dtype,
        # whatever dtype the initial array arrived in.
        assert Parameter(np.ones(3, dtype=np.float32)).dtype == compute_dtype()
        assert Parameter(np.ones(3, dtype=np.float64)).dtype == compute_dtype()

    def test_repr(self):
        assert "shape=(2, 3)" in repr(Parameter(np.ones((2, 3))))


class TestRegistration:
    def test_named_parameters_nested(self):
        names = dict(Net().named_parameters()).keys()
        assert names == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_parameters_count(self):
        net = Net()
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_children(self):
        assert len(list(Net().children())) == 2

    def test_named_modules_includes_self(self):
        names = [name for name, _m in Net().named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_sequential_parameter_names_are_indexed(self):
        seq = Sequential(Dense(2, 2, rng=0), ReLU(), Dense(2, 1, rng=1))
        names = dict(seq.named_parameters()).keys()
        assert "0.weight" in names and "2.weight" in names


class TestTrainEval:
    def test_train_eval_recursive(self):
        net = Net()
        net.eval()
        assert not net.training
        assert not net.fc1.training
        net.train()
        assert net.fc2.training

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestGradients:
    def test_zero_grad(self):
        net = Net()
        out = net(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = Net(), Net()
        # Different seeds would be nicer but Net is deterministic; mutate.
        for p in net1.parameters():
            p.data = p.data + 1.0
        net2.load_state_dict(net1.state_dict())
        for p1, p2 in zip(net1.parameters(), net2.parameters()):
            assert np.array_equal(p1.data, p2.data)

    def test_state_dict_copies(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"][0, 0] = 999.0
        assert net.fc1.weight.data[0, 0] != 999.0

    def test_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError, match="fc1.weight"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)

    def test_buffers_roundtrip(self):
        from repro.nn import BatchNorm1d

        bn1, bn2 = BatchNorm1d(3), BatchNorm1d(3)
        bn1(Tensor(np.random.default_rng(0).normal(size=(8, 3))))
        bn2.load_state_dict(bn1.state_dict())
        assert np.allclose(bn1.running_mean, bn2.running_mean)
        assert np.allclose(bn1.running_var, bn2.running_var)


def test_repr_shows_tree():
    text = repr(Net())
    assert "Net(" in text and "(fc1)" in text and "Dense" in text
