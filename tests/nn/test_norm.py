"""Tests for batch normalization layers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import BatchNorm1d, BatchNorm2d


def randn(*shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(2.0, 3.0, size=shape))


class TestBatchNorm1d:
    def test_normalises_in_train(self):
        bn = BatchNorm1d(4)
        out = bn(randn(64, 4)).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_affine_applied(self):
        bn = BatchNorm1d(2)
        bn.gamma.data = np.array([2.0, 2.0])
        bn.beta.data = np.array([1.0, 1.0])
        out = bn(randn(64, 2)).data
        assert np.allclose(out.mean(axis=0), 1.0, atol=1e-6)

    def test_running_stats_update(self):
        bn = BatchNorm1d(3, momentum=0.5)
        x = randn(32, 3)
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(3, momentum=1.0)  # adopt batch stats fully
        x = randn(128, 3)
        bn(x)
        bn.eval()
        out = bn(x).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-1)

    def test_eval_deterministic(self):
        bn = BatchNorm1d(3)
        bn(randn(16, 3))
        bn.eval()
        x = randn(4, 3, seed=1)
        assert np.array_equal(bn(x).data, bn(x).data)

    def test_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(randn(2, 4))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(3, momentum=0.0)

    def test_no_affine(self):
        bn = BatchNorm1d(3, affine=False)
        assert bn.gamma is None
        assert len(list(bn.parameters())) == 0
        bn(randn(8, 3))

    def test_gradients_flow(self):
        bn = BatchNorm1d(3)
        x = Tensor(
            np.random.default_rng(0).normal(size=(8, 3)), requires_grad=True
        )
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.gamma.grad is not None


class TestBatchNorm2d:
    def test_per_channel_normalisation(self):
        bn = BatchNorm2d(3)
        out = bn(randn(16, 3, 5, 5)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError):
            BatchNorm2d(3)(randn(2, 4, 5, 5))

    def test_running_buffers_in_state_dict(self):
        bn = BatchNorm2d(2)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state
