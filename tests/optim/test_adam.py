"""Tests for Adam, AdamW and RMSprop."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import Adam, AdamW, RMSprop
from repro.runtime import precision


def quad_param(value=5.0):
    return Parameter(np.array([float(value)]))


def quad_step(param, optimizer):
    optimizer.zero_grad()
    (param * param).sum().backward()
    optimizer.step()


class TestValidation:
    def test_bad_betas(self):
        with pytest.raises(ValueError, match="betas"):
            Adam([quad_param()], betas=(1.0, 0.999))

    def test_bad_eps(self):
        with pytest.raises(ValueError, match="eps"):
            Adam([quad_param()], eps=0.0)

    def test_rmsprop_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            RMSprop([quad_param()], alpha=1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the very first Adam step has magnitude ~lr.
        p = quad_param(1.0)
        Adam([p], lr=0.1).__class__  # noqa: B018 - clarity
        opt = Adam([p], lr=0.1)
        quad_step(p, opt)
        assert np.isclose(abs(1.0 - p.data[0]), 0.1, atol=1e-6)

    def test_converges_on_quadratic(self):
        p = quad_param(5.0)
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            quad_step(p, opt)
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_contributes(self):
        # One step's decay contribution is below float32 resolution,
        # so compare at float64 regardless of the ambient policy.
        with precision("float64"):
            p1, p2 = quad_param(2.0), quad_param(2.0)
            o1 = Adam([p1], lr=0.01)
            o2 = Adam([p2], lr=0.01, weight_decay=1.0)
            quad_step(p1, o1)
            quad_step(p2, o2)
        assert p1.data[0] != p2.data[0]

    def test_state_independent_across_params(self):
        p, q = quad_param(1.0), quad_param(100.0)
        opt = Adam([p, q], lr=0.1)
        quad_step(p, opt)  # q has no grad this step
        assert q.data[0] == 100.0


class TestAdamW:
    def test_decay_is_decoupled(self):
        # With zero gradient, AdamW still shrinks weights; Adam does not.
        p_adam, p_adamw = quad_param(1.0), quad_param(1.0)
        o_adam = Adam([p_adam], lr=0.1, weight_decay=0.5)
        o_adamw = AdamW([p_adamw], lr=0.1, weight_decay=0.5)
        for p, o in ((p_adam, o_adam), (p_adamw, o_adamw)):
            o.zero_grad()
            (p * 0.0).sum().backward()
            o.step()
        # Adam: zero grad + coupled decay -> moments nonzero -> moves.
        # AdamW: decoupled decay shrinks multiplicatively by lr*wd.
        assert np.isclose(p_adamw.data[0], 1.0 - 0.1 * 0.5 * 1.0)

    def test_converges(self):
        p = quad_param(3.0)
        opt = AdamW([p], lr=0.2, weight_decay=0.01)
        for _ in range(200):
            quad_step(p, opt)
        assert abs(p.data[0]) < 0.05


class TestRMSprop:
    def test_converges_on_quadratic(self):
        p = quad_param(5.0)
        opt = RMSprop([p], lr=0.05)
        for _ in range(300):
            quad_step(p, opt)
        assert abs(p.data[0]) < 0.05

    def test_momentum_changes_trajectory(self):
        p1, p2 = quad_param(5.0), quad_param(5.0)
        o1 = RMSprop([p1], lr=0.01)
        o2 = RMSprop([p2], lr=0.01, momentum=0.9)
        for _ in range(5):
            quad_step(p1, o1)
            quad_step(p2, o2)
        assert p1.data[0] != p2.data[0]
