"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    Adam,
    CosineAnnealingLR,
    ExponentialLR,
    SGD,
    StepLR,
    WarmupLR,
)


def make_opt(lr=1.0):
    return SGD([Parameter(np.array([1.0]))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        # step() is called at the END of each epoch, so the returned value
        # is the LR for the next epoch: epochs 0-1 run at 1.0, 2-3 at 0.1.
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)

    def test_mutates_optimizer(self):
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5


class TestExponentialLR:
    def test_geometric_decay(self):
        sched = ExponentialLR(make_opt(1.0), gamma=0.5)
        assert np.isclose(sched.step(), 0.5)
        assert np.isclose(sched.step(), 0.25)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, min_lr=0.1)
        values = [sched.step() for _ in range(10)]
        assert values[-1] == pytest.approx(0.1)
        assert values[0] < 1.0

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_opt(1.0), total_epochs=10)
        values = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_clamps_after_horizon(self):
        sched = CosineAnnealingLR(make_opt(1.0), total_epochs=2, min_lr=0.2)
        for _ in range(5):
            lr = sched.step()
        assert lr == pytest.approx(0.2)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_opt(), total_epochs=0)


class TestWarmupLR:
    def test_linear_ramp(self):
        sched = WarmupLR(make_opt(1.0), warmup_epochs=4)
        lrs = [sched.step() for _ in range(4)]
        assert np.allclose(lrs, [0.25, 0.5, 0.75, 1.0])

    def test_flat_after_warmup_without_inner(self):
        sched = WarmupLR(make_opt(1.0), warmup_epochs=2)
        [sched.step() for _ in range(2)]
        assert sched.step() == 1.0

    def test_delegates_to_inner(self):
        opt = make_opt(1.0)
        inner = ExponentialLR(opt, gamma=0.5)
        sched = WarmupLR(opt, warmup_epochs=1, after=inner)
        sched.step()  # warmup complete
        assert np.isclose(sched.step(), 0.5)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            WarmupLR(make_opt(), warmup_epochs=0)


def test_scheduler_works_with_adam():
    opt = Adam([Parameter(np.array([1.0]))], lr=0.1)
    sched = StepLR(opt, step_size=1, gamma=0.1)
    sched.step()
    assert np.isclose(opt.lr, 0.01)
