"""Tests for SGD and the optimizer base class."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Parameter
from repro.optim import SGD


def quad_param(value=5.0):
    return Parameter(np.array([value]))


def quad_step(param, optimizer):
    """One gradient step on f(p) = p^2 (gradient 2p)."""
    optimizer.zero_grad()
    (param * param).sum().backward()
    optimizer.step()


class TestValidation:
    def test_negative_lr(self):
        with pytest.raises(ValueError, match="learning rate"):
            SGD([quad_param()], lr=-1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError, match="empty"):
            SGD([], lr=0.1)

    def test_negative_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            SGD([quad_param()], lr=0.1, momentum=-0.5)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError, match="nesterov"):
            SGD([quad_param()], lr=0.1, nesterov=True)

    def test_negative_weight_decay(self):
        with pytest.raises(ValueError, match="weight_decay"):
            SGD([quad_param()], lr=0.1, weight_decay=-0.1)


class TestUpdates:
    def test_plain_update_math(self):
        p = quad_param(5.0)
        opt = SGD([p], lr=0.1)
        quad_step(p, opt)  # p <- 5 - 0.1 * 10 = 4
        assert np.isclose(p.data[0], 4.0)

    def test_skips_params_without_grad(self):
        p, q = quad_param(1.0), quad_param(1.0)
        opt = SGD([p, q], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()  # q gets no grad
        opt.step()
        assert np.isclose(q.data[0], 1.0)

    def test_momentum_accelerates(self):
        p_plain, p_mom = quad_param(5.0), quad_param(5.0)
        opt_plain = SGD([p_plain], lr=0.01)
        opt_mom = SGD([p_mom], lr=0.01, momentum=0.9)
        for _ in range(10):
            quad_step(p_plain, opt_plain)
            quad_step(p_mom, opt_mom)
        assert abs(p_mom.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        p = quad_param(1.0)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()  # zero task gradient
        opt.step()
        assert p.data[0] < 1.0

    def test_nesterov_differs_from_heavy_ball(self):
        p1, p2 = quad_param(5.0), quad_param(5.0)
        o1 = SGD([p1], lr=0.01, momentum=0.9)
        o2 = SGD([p2], lr=0.01, momentum=0.9, nesterov=True)
        for _ in range(3):
            quad_step(p1, o1)
            quad_step(p2, o2)
        assert p1.data[0] != p2.data[0]

    def test_converges_on_quadratic(self):
        p = quad_param(5.0)
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            quad_step(p, opt)
        assert abs(p.data[0]) < 1e-3

    def test_zero_grad_clears(self):
        p = quad_param()
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        opt.zero_grad()
        assert p.grad is None
