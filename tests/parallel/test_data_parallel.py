"""Serial-equivalence and crash-recovery tests for DataParallelTrainer.

The contract under test:

* one worker is **bit-for-bit** identical to the serial trainer (the whole
  batch lands on worker 0 and gradients are copied, not re-summed);
* more workers differ from serial only by floating-point summation order,
  bounded by a dtype-aware tolerance;
* a worker killed mid-epoch is restarted and the epoch still completes.
"""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.defenses import EpochwiseAdvTrainer, Trainer
from repro.models import mnist_mlp
from repro.optim import Adam
from repro.parallel import DataParallelTrainer

EPOCHS = 2
BATCH = 64


def _tolerances(dtype):
    """Summation-order tolerance: tight at float64, looser at float32."""
    if np.dtype(dtype) == np.float64:
        return dict(rtol=1e-6, atol=1e-9)
    return dict(rtol=1e-3, atol=1e-5)


def make_trainer(kind):
    model = mnist_mlp(seed=0)
    optimizer = Adam(model.parameters(), lr=2e-3)
    if kind == "vanilla":
        return Trainer(model, optimizer)
    return EpochwiseAdvTrainer(
        model, optimizer, epsilon=0.2, warmup_epochs=1
    )


def make_loader(digits_small):
    train, _ = digits_small
    return DataLoader(train, batch_size=BATCH, rng=0)


def train_serial(kind, digits_small, epochs=EPOCHS):
    trainer = make_trainer(kind)
    history = trainer.fit(make_loader(digits_small), epochs=epochs)
    return trainer, history


def train_parallel(kind, digits_small, workers, epochs=EPOCHS):
    wrapper = DataParallelTrainer(make_trainer(kind), num_workers=workers)
    try:
        history = wrapper.fit(make_loader(digits_small), epochs=epochs)
    finally:
        wrapper.close()
    return wrapper, history


@pytest.mark.parametrize("kind", ["vanilla", "proposed"])
class TestSerialEquivalence:
    def test_one_worker_is_bitwise_serial(self, kind, digits_small):
        serial, serial_history = train_serial(kind, digits_small)
        parallel, parallel_history = train_parallel(kind, digits_small, 1)
        for key, value in serial.model.state_dict().items():
            assert np.array_equal(
                value, parallel.model.state_dict()[key]
            ), f"parameter {key} diverged at one worker"
        assert serial_history.losses == parallel_history.losses

    def test_two_workers_within_summation_tolerance(self, kind, digits_small):
        serial, serial_history = train_serial(kind, digits_small)
        parallel, parallel_history = train_parallel(kind, digits_small, 2)
        tol = _tolerances(next(iter(serial.model.state_dict().values())).dtype)
        for key, value in serial.model.state_dict().items():
            np.testing.assert_allclose(
                value, parallel.model.state_dict()[key],
                err_msg=f"parameter {key} outside tolerance at two workers",
                **tol,
            )
        np.testing.assert_allclose(
            serial_history.losses, parallel_history.losses, **tol
        )


class TestWrapperBehaviour:
    def test_name_and_steps_delegate_to_inner(self, digits_small):
        inner = make_trainer("proposed")
        wrapper = DataParallelTrainer(inner, num_workers=1)
        try:
            assert wrapper.name == inner.name
            assert wrapper.name_with_steps == getattr(
                inner, "name_with_steps", inner.name
            )
        finally:
            wrapper.close()

    def test_epoch_clock_tracks_inner(self, digits_small):
        wrapper, _ = train_parallel("vanilla", digits_small, 1, epochs=2)
        assert wrapper.epoch == 2
        assert wrapper.inner.epoch == 2

    def test_pool_persists_across_fit_calls(self, digits_small):
        wrapper = DataParallelTrainer(
            make_trainer("vanilla"), num_workers=2
        )
        try:
            wrapper.fit(make_loader(digits_small), epochs=1)
            pool = wrapper._pool
            assert pool is not None and pool.started
            wrapper.fit(make_loader(digits_small), epochs=1)
            assert wrapper._pool is pool  # same workers, no re-fork
        finally:
            wrapper.close()
        assert wrapper._pool is None

    def test_close_is_idempotent(self, digits_small):
        wrapper, _ = train_parallel("vanilla", digits_small, 1, epochs=1)
        wrapper.close()
        wrapper.close()


class TestShardAwareOwnership:
    """Streamed loaders shard ownership at whole-shard granularity."""

    def streamed_loader(self, shard_size=32):
        from repro.data import SyntheticSource

        source = SyntheticSource(
            "digits", num_examples=128, shard_size=shard_size, seed=6
        )
        return DataLoader(source, batch_size=32, rng=0)

    def test_owner_block_resolution(self, digits_small):
        resolve = DataParallelTrainer._owner_block_for
        # Streamed multi-shard loader with enough shards: whole shards.
        assert resolve(self.streamed_loader(), 2) == 32
        # In-memory (single-shard) loader: legacy index % N striding.
        assert resolve(make_loader(digits_small), 2) == 0
        # Fewer shards than workers: fall back so nobody idles.
        assert resolve(self.streamed_loader(), 8) == 0

    def test_one_worker_streamed_is_bitwise_serial(self):
        serial = make_trainer("proposed")
        serial.fit(self.streamed_loader(), epochs=EPOCHS)
        wrapper = DataParallelTrainer(
            make_trainer("proposed"), num_workers=1
        )
        try:
            wrapper.fit(self.streamed_loader(), epochs=EPOCHS)
        finally:
            wrapper.close()
        for key, value in serial.model.state_dict().items():
            assert np.array_equal(
                value, wrapper.model.state_dict()[key]
            ), f"parameter {key} diverged at one streamed worker"

    def test_two_workers_streamed_within_summation_tolerance(self):
        serial = make_trainer("proposed")
        serial_history = serial.fit(self.streamed_loader(), epochs=EPOCHS)
        wrapper = DataParallelTrainer(
            make_trainer("proposed"), num_workers=2
        )
        try:
            parallel_history = wrapper.fit(
                self.streamed_loader(), epochs=EPOCHS
            )
        finally:
            wrapper.close()
        tol = _tolerances(next(iter(serial.model.state_dict().values())).dtype)
        for key, value in serial.model.state_dict().items():
            np.testing.assert_allclose(
                value, wrapper.model.state_dict()[key],
                err_msg=f"parameter {key} outside tolerance when streamed",
                **tol,
            )
        np.testing.assert_allclose(
            serial_history.losses, parallel_history.losses, **tol
        )


class _KillOnceTrainer(DataParallelTrainer):
    """Kills worker 0 immediately before one batch step (crash drill)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.killed = False

    def _parallel_step(self, batch, owner_block):
        if not self.killed and self._pool is not None:
            self._pool.kill(0)
            self.killed = True
        return super()._parallel_step(batch, owner_block)


class TestCrashRecovery:
    def test_killed_worker_is_restarted_and_epoch_completes(
        self, digits_small
    ):
        wrapper = _KillOnceTrainer(make_trainer("vanilla"), num_workers=2)
        try:
            history = wrapper.fit(make_loader(digits_small), epochs=2)
        finally:
            wrapper.close()
        assert wrapper.killed
        assert len(history.losses) == 2  # both epochs completed
        assert all(np.isfinite(history.losses))

    def test_restart_is_counted(self, digits_small):
        wrapper = _KillOnceTrainer(make_trainer("vanilla"), num_workers=2)
        try:
            wrapper.fit(make_loader(digits_small), epochs=1)
            assert wrapper._pool.restarts >= 1
        finally:
            wrapper.close()
