"""Fork-safety regression tests for the workspace pool and telemetry.

Worker processes are forked mid-run, potentially while the parent holds a
telemetry lock or a populated scratch-buffer pool.  The
``os.register_at_fork`` hooks in :mod:`repro.runtime.workspace` and
:mod:`repro.telemetry.core` must hand every child a fresh pool, an empty
span stack, cleanly re-created locks and no inherited sinks — otherwise the
first worker step deadlocks or double-counts.
"""

import multiprocessing

import numpy as np

from repro import telemetry as tel
from repro.parallel import WorkerPool
from repro.runtime.workspace import get_workspace
from repro.telemetry import core as tel_core

_FORK = multiprocessing.get_context("fork")


def _fork_and_inspect(inspect):
    """Fork a child, run ``inspect()`` there, ship the result back."""
    parent_conn, child_conn = _FORK.Pipe()

    def body():
        try:
            child_conn.send(("ok", inspect()))
        except Exception as exc:  # pragma: no cover - failure reporting
            child_conn.send(("error", repr(exc)))

    process = _FORK.Process(target=body, daemon=True)
    process.start()
    assert parent_conn.poll(10), "child never reported"
    status, payload = parent_conn.recv()
    process.join(timeout=5)
    assert status == "ok", payload
    return payload


class TestWorkspaceForkSafety:
    def test_child_pool_is_empty(self):
        workspace = get_workspace()
        buffer = workspace.acquire((64, 64), np.float64)
        workspace.release(buffer)
        assert workspace.cached_buffers > 0

        def inspect():
            child = get_workspace()
            return {
                "buffers": child.cached_buffers,
                "hits": child.hits,
                "misses": child.misses,
                "bytes": child.cached_bytes,
            }

        stats = _fork_and_inspect(inspect)
        assert stats == {"buffers": 0, "hits": 0, "misses": 0, "bytes": 0}
        # The parent's pool is untouched.
        assert workspace.cached_buffers > 0

    def test_child_pool_is_usable(self):
        def inspect():
            child = get_workspace()
            buffer = child.acquire((8,), np.float64)
            child.release(buffer)
            again = child.acquire((8,), np.float64)
            return again is buffer

        assert _fork_and_inspect(inspect) in (True, False)  # no deadlock/raise


class TestTelemetryForkSafety:
    def test_child_has_no_inherited_span_stack(self):
        previous = tel.set_enabled(True)
        try:
            with tel.span("parent-open"):

                def inspect():
                    return {
                        "stack": len(tel_core._state.stack),
                        "sinks": len(tel_core._sinks),
                    }

                state = _fork_and_inspect(inspect)
        finally:
            tel.set_enabled(previous)
        assert state == {"stack": 0, "sinks": 0}

    def test_child_locks_are_acquirable_even_if_parent_held_them(self):
        """Fork while holding both telemetry locks: the child must not
        inherit a locked lock (the owning thread does not exist there)."""

        def inspect():
            metrics_ok = tel_core._metrics._lock.acquire(timeout=1)
            if metrics_ok:
                tel_core._metrics._lock.release()
            sinks_ok = tel_core._sinks_lock.acquire(timeout=1)
            if sinks_ok:
                tel_core._sinks_lock.release()
            # A counter update exercises the lock end-to-end.
            tel.set_enabled(True)
            tel.counter("forksafe.probe")
            return metrics_ok and sinks_ok

        with tel_core._metrics._lock, tel_core._sinks_lock:
            assert _fork_and_inspect(inspect) is True

    def test_child_metrics_start_empty(self):
        previous = tel.set_enabled(True)
        try:
            tel.counter("forksafe.parent_counter", 3.0)

            def inspect():
                return dict(tel_core._metrics.snapshot()["counters"])

            counters = _fork_and_inspect(inspect)
        finally:
            tel.set_enabled(previous)
        assert "forksafe.parent_counter" not in counters

    def test_worker_pool_children_can_emit_telemetry(self):
        """End-to-end: a forked pool worker records spans and counters
        without touching the parent's metrics."""
        previous = tel.set_enabled(True)
        try:
            tel.counter("forksafe.parent_only")

            def handler(worker_id, message):
                tel.set_enabled(True)
                with tel.span("child-work"):
                    tel.counter("forksafe.child_only")
                snap = tel_core._metrics.snapshot()["counters"]
                return sorted(snap)

            pool = WorkerPool(1, handler)
            pool.start()
            try:
                child_counters = pool.call(0, None, timeout=30)
            finally:
                pool.shutdown()
            assert "forksafe.child_only" in child_counters
            assert "forksafe.parent_only" not in child_counters
            parent = tel_core._metrics.snapshot()["counters"]
            assert "forksafe.child_only" not in parent
        finally:
            tel.set_enabled(previous)
