"""Tests for parallel_map and the grid-parallel experiment sweeps."""

import os

import numpy as np
import pytest

from repro.experiments import smoke_scale
from repro.experiments.ablations import run_step_size_ablation
from repro.parallel import WorkerCrash, WorkerError, parallel_map


class TestParallelMap:
    def test_preserves_input_order(self):
        results = parallel_map(lambda x: x * x, list(range(7)), num_workers=3)
        assert results == [x * x for x in range(7)]

    def test_serial_fallback_runs_in_parent(self):
        pids = parallel_map(lambda _: os.getpid(), [1, 2, 3], num_workers=1)
        assert set(pids) == {os.getpid()}

    def test_single_item_runs_in_parent(self):
        pids = parallel_map(lambda _: os.getpid(), [1], num_workers=4)
        assert pids == [os.getpid()]

    def test_workers_are_forked(self):
        pids = parallel_map(
            lambda _: os.getpid(), list(range(6)), num_workers=2
        )
        assert os.getpid() not in pids
        assert 1 <= len(set(pids)) <= 2

    def test_closures_are_inherited(self):
        table = {"offset": 100}
        results = parallel_map(
            lambda x: x + table["offset"], [1, 2, 3, 4], num_workers=2
        )
        assert results == [101, 102, 103, 104]

    def test_more_workers_than_items_is_capped(self):
        assert parallel_map(
            lambda x: -x, [1, 2], num_workers=8
        ) == [-1, -2]

    def test_exception_propagates_as_worker_error(self):
        def sometimes(x):
            if x == 2:
                raise ValueError("bad cell")
            return x

        with pytest.raises(WorkerError) as excinfo:
            parallel_map(sometimes, [1, 2, 3], num_workers=2)
        assert "bad cell" in excinfo.value.remote_traceback

    def test_crash_names_the_grid_item(self):
        def die(x):
            if x == "victim":
                os._exit(13)
            return x

        with pytest.raises(WorkerCrash) as excinfo:
            parallel_map(die, ["a", "victim", "b"], num_workers=2)
        assert "victim" in str(excinfo.value)

    def test_env_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pids = parallel_map(lambda _: os.getpid(), list(range(4)))
        assert os.getpid() not in pids


class TestGridSweeps:
    def test_ablation_grid_parallel_matches_serial(self):
        config = smoke_scale(
            "digits",
            train_per_class=8,
            test_per_class=4,
            epochs=2,
            warmup_epochs=1,
        )
        fractions = (0.5, 1.0)
        serial = run_step_size_ablation(config, step_fractions=fractions)
        parallel = run_step_size_ablation(
            config.with_overrides(workers=2), step_fractions=fractions
        )
        assert serial.values == parallel.values
        for serial_acc, parallel_acc in zip(
            serial.accuracy, parallel.accuracy
        ):
            for attack in serial_acc:
                np.testing.assert_allclose(
                    serial_acc[attack],
                    parallel_acc[attack],
                    rtol=1e-6,
                    atol=1e-9,
                    err_msg=f"grid sweep diverged on {attack}",
                )
