"""Tests for the persistent forked worker pool and its crash recovery."""

import os

import pytest

from repro.parallel import WorkerCrash, WorkerError, WorkerPool, resolve_workers


def echo(worker_id, message):
    return (worker_id, message)


@pytest.fixture
def pool():
    p = WorkerPool(2, echo, name="repro-test")
    p.start()
    yield p
    p.shutdown()


class TestResolveWorkers:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_none_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(None) == 4
        assert resolve_workers(0) == 4

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_invalid_counts_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(-1)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers(None)


class TestRoundTrips:
    def test_call_reaches_the_right_worker(self, pool):
        assert pool.call(0, "hello") == (0, "hello")
        assert pool.call(1, "world") == (1, "world")

    def test_broadcast_gather_in_worker_order(self, pool):
        pool.broadcast("ping")
        assert pool.gather() == [(0, "ping"), (1, "ping")]

    def test_workers_are_separate_processes(self, pool):
        def pid(worker_id, message):
            return os.getpid()

        p = WorkerPool(2, pid)
        p.start()
        try:
            p.broadcast(None)
            pids = p.gather()
            assert len(set(pids)) == 2
            assert os.getpid() not in pids
        finally:
            p.shutdown()

    def test_closure_state_is_inherited_via_fork(self):
        payload = {"token": 12345}

        def handler(worker_id, message):
            return payload["token"] + message

        p = WorkerPool(1, handler)
        p.start()
        try:
            assert p.call(0, 1) == 12346
        finally:
            p.shutdown()


class TestErrors:
    def test_handler_exception_carries_remote_traceback(self, pool):
        def boom(worker_id, message):
            raise RuntimeError("kaboom in the child")

        p = WorkerPool(1, boom)
        p.start()
        try:
            with pytest.raises(WorkerError) as excinfo:
                p.call(0, None)
            assert "kaboom in the child" in excinfo.value.remote_traceback
            assert excinfo.value.worker_id == 0
            # The worker survives its handler raising.
            assert p._workers[0].process.is_alive()
        finally:
            p.shutdown()

    def test_recv_timeout(self, pool):
        with pytest.raises(TimeoutError):
            pool.recv(0, timeout=0.1)


class TestCrashRecovery:
    def test_killed_worker_raises_worker_crash(self, pool):
        pool.send(0, "before-death")
        pool.recv(0)
        pool.kill(0)
        pool.send(1, "still-fine")  # sibling unaffected
        with pytest.raises(WorkerCrash):
            pool.call(0, "into-the-void", timeout=10)
        assert pool.recv(1) == (1, "still-fine")

    def test_restart_replaces_dead_worker(self, pool):
        pool.kill(0)
        assert pool.restarts == 0
        pool.restart(0)
        assert pool.restarts == 1
        assert pool.call(0, "revived") == (0, "revived")

    def test_shutdown_is_idempotent(self):
        p = WorkerPool(2, echo)
        p.start()
        p.shutdown()
        p.shutdown()
        assert not p.started

    def test_shutdown_survives_dead_workers(self):
        p = WorkerPool(2, echo)
        p.start()
        p.kill(0)
        p.shutdown()
        assert not p.started

    def test_num_workers_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0, echo)
