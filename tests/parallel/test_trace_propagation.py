"""Cross-process trace propagation through the worker pool.

The satellite contract: trace ids minted in the parent survive the fork
boundary — a traced ``WorkerPool.send`` wraps the payload in a context
envelope, the worker adopts it for the handler call, and root spans the
handler opens are emitted to the worker's own spool file carrying the
parent's ``trace_id`` and parenting on the dispatching span.
"""

import json
import os

import pytest

from repro import telemetry as tel
from repro.parallel import WorkerPool
from repro.telemetry.trace import TraceCollector, shutdown_spool


def traced_work(worker_id, message):
    """Handler that opens a (root) span; emits to the worker's spool."""
    tel.set_enabled(True)
    with tel.span("work", worker=worker_id):
        pass
    return (os.getpid(), message)


@pytest.fixture
def clean_telemetry():
    previous = tel.set_enabled(False)
    tel.reset_metrics()
    yield
    shutdown_spool()
    tel.set_enabled(previous)
    tel.reset_metrics()


def _spool_records(spool):
    records = []
    for name in sorted(os.listdir(spool)):
        with open(os.path.join(spool, name)) as handle:
            records.extend(
                json.loads(line) for line in handle if line.strip()
            )
    return records


class TestTracePropagation:
    def test_worker_spans_join_the_parent_trace(self, tmp_path,
                                                clean_telemetry):
        run = str(tmp_path / "run.jsonl")
        pool = WorkerPool(2, traced_work, name="repro-trace-test")
        pool.start()
        try:
            with tel.capture(jsonl=run):
                with tel.span("epoch", emit=True) as epoch:
                    pool.broadcast("step")
                    replies = pool.gather(timeout=30)
                    parent_ids = {epoch.span_id}
                    trace_id = epoch._resolve_trace_id()
        finally:
            pool.shutdown()

        worker_pids = {pid for pid, _msg in replies}
        assert len(worker_pids) == 2  # two distinct child processes

        spool = f"{run}.spool"
        records = _spool_records(spool)
        assert len(records) == 2
        for record in records:
            assert record["name"] == "work"
            assert record["trace_id"] == trace_id
            assert record["parent_id"] in parent_ids
            assert record["pid"] in worker_pids

        # The collector merges run record + spools into ONE trace.
        collector = TraceCollector.from_run(run)
        assert collector.trace_ids() == [trace_id]
        text = collector.render_one(trace_id)
        assert "3 span(s), 3 process(es)" in text

    def test_untraced_send_has_no_envelope_overhead(self, tmp_path,
                                                    clean_telemetry):
        """Telemetry off: workers see the raw payload, no spool appears."""
        seen = []

        def echo(worker_id, message):
            return message

        pool = WorkerPool(1, echo)
        pool.start()
        try:
            assert pool.call(0, ("plain", "tuple")) == ("plain", "tuple")
        finally:
            pool.shutdown()
        assert not os.listdir(str(tmp_path))

    def test_traced_payloads_shaped_like_envelopes_pass_through(
        self, tmp_path, clean_telemetry
    ):
        """A 4-tuple user payload must not be eaten by envelope unwrap."""
        payload = ("a", "b", "c", "d")

        def echo(worker_id, message):
            return message

        run = str(tmp_path / "run.jsonl")
        pool = WorkerPool(1, echo)
        pool.start()
        try:
            with tel.capture(jsonl=run):
                with tel.span("root", emit=True):
                    assert pool.call(0, payload, timeout=30) == payload
        finally:
            pool.shutdown()

    def test_restart_counter_reaches_health_block(self, clean_telemetry):
        def echo(worker_id, message):
            return message

        pool = WorkerPool(1, echo)
        pool.start()
        try:
            previous = tel.set_enabled(True)
            try:
                pool.restart(0)
            finally:
                tel.set_enabled(previous)
            assert pool.call(0, "alive", timeout=30) == "alive"
        finally:
            pool.shutdown()
        snapshot = tel.get_metrics().snapshot()
        assert snapshot["counters"]["parallel.worker_restarts"] == 1.0
