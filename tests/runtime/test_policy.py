"""Tests for the runtime precision-policy subsystem.

The suite runs under any ``REPRO_DTYPE`` (CI exercises float64 and
float32), so assertions compare against the environment-selected default
rather than hard-coding float64.
"""

import os
import threading

import numpy as np
import pytest

ENV_DEFAULT = np.dtype(os.environ.get("REPRO_DTYPE", "float64"))


def other_dtype(dtype):
    """The supported float dtype that is not ``dtype``."""
    if np.dtype(dtype) == np.dtype(np.float64):
        return np.dtype(np.float32)
    return np.dtype(np.float64)

from repro import runtime
from repro.autograd import Tensor, check_gradients
from repro.data import DataLoader, load_dataset
from repro.defenses import build_trainer
from repro.models import mnist_mlp
from repro.nn import Dense, Sequential
from repro.optim import SGD, Adam
from repro.runtime import (
    Policy,
    active_policy,
    compute_dtype,
    get_default_policy,
    precision,
    set_default_policy,
)


class TestPolicy:
    def test_default_policy_matches_env(self):
        policy = get_default_policy()
        assert policy.compute_dtype == ENV_DEFAULT
        assert policy.accum_dtype == ENV_DEFAULT
        # Gradient checking stays float64 whatever the env selects.
        assert policy.grad_check_dtype == np.dtype(np.float64)

    def test_from_dtype(self):
        policy = Policy.from_dtype("float32")
        assert policy.compute_dtype == np.dtype(np.float32)
        assert policy.accum_dtype == np.dtype(np.float32)
        # Gradient checking always stays at float64.
        assert policy.grad_check_dtype == np.dtype(np.float64)

    def test_accum_defaults_to_compute(self):
        policy = Policy(compute_dtype=np.dtype(np.float32))
        assert policy.accum_dtype == np.dtype(np.float32)

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError):
            Policy.from_dtype("int64")
        with pytest.raises(ValueError):
            Policy.from_dtype("float16")

    def test_set_default_policy_roundtrip(self):
        original = get_default_policy()
        flipped = other_dtype(original.compute_dtype)
        try:
            set_default_policy(str(flipped))
            assert compute_dtype() == flipped
        finally:
            set_default_policy(original)
        assert compute_dtype() == original.compute_dtype


class TestPrecisionStack:
    def test_push_pop(self):
        base = compute_dtype()
        flipped = other_dtype(base)
        with precision(str(flipped)):
            assert compute_dtype() == flipped
        assert compute_dtype() == base

    def test_nesting_restores_each_level(self):
        base = compute_dtype()
        flipped = other_dtype(base)
        with precision(str(flipped)):
            assert compute_dtype() == flipped
            with precision(str(base)):
                assert compute_dtype() == base
            assert compute_dtype() == flipped
        assert compute_dtype() == base

    def test_pop_on_exception(self):
        base = compute_dtype()
        with pytest.raises(RuntimeError):
            with precision(str(other_dtype(base))):
                raise RuntimeError("boom")
        assert compute_dtype() == base

    def test_accepts_policy_instance(self):
        policy = Policy(
            compute_dtype=np.dtype(np.float32),
            accum_dtype=np.dtype(np.float64),
        )
        with precision(policy):
            assert active_policy() is policy

    def test_stack_is_thread_local(self):
        base = compute_dtype()
        flipped = other_dtype(base)
        seen = {}
        barrier = threading.Barrier(2)

        def worker():
            # The main thread's active precision region must not leak here:
            # a fresh thread sees the process default, not the caller's.
            barrier.wait(timeout=5)
            seen["worker"] = compute_dtype()
            with precision(str(flipped)):
                seen["worker_inner"] = compute_dtype()

        thread = threading.Thread(target=worker)
        with precision(str(flipped)):
            thread.start()
            barrier.wait(timeout=5)
            thread.join(timeout=5)
            seen["main"] = compute_dtype()
        assert seen["main"] == flipped
        assert seen["worker"] == base
        assert seen["worker_inner"] == flipped


class TestModuleToDtype:
    def _model(self):
        return Sequential(Dense(4, 8), Dense(8, 2))

    def test_params_cast_in_place(self):
        model = self._model()
        params = list(model.parameters())
        model.to_dtype("float32")
        after = list(model.parameters())
        assert all(a is b for a, b in zip(params, after))  # identity kept
        assert all(p.data.dtype == np.dtype(np.float32) for p in params)

    def test_optimizer_buffers_follow_params(self):
        for make_opt in (
            lambda ps: SGD(ps, lr=0.1, momentum=0.9),
            lambda ps: Adam(ps, lr=0.01),
        ):
            model = self._model()
            optimizer = make_opt(list(model.parameters()))
            x = np.random.default_rng(0).normal(size=(8, 4))

            def step():
                optimizer.zero_grad()
                dtype = next(iter(model.parameters())).data.dtype
                out = model(Tensor(x.astype(dtype)))
                out.sum().backward()
                optimizer.step()

            step()  # allocate state buffers at float64
            model.to_dtype("float32")
            step()  # buffers must re-sync to the new parameter dtype
            for param in model.parameters():
                assert param.data.dtype == np.dtype(np.float32)

    def test_rejects_integer_dtype(self):
        with pytest.raises(TypeError):
            self._model().to_dtype("int32")


class TestFloat32EndToEnd:
    def test_epochwise_trainer_cache_stays_float32(self):
        with precision("float32"):
            train, _ = load_dataset(
                "digits", train_per_class=5, test_per_class=1, seed=0
            )
            loader = DataLoader(train, batch_size=16, rng=0)
            model = mnist_mlp(seed=0)
            trainer = build_trainer(
                "proposed", model, epsilon=0.25, lr=1e-3
            )
            for _ in range(2):
                loss = trainer.train_epoch(loader)
            assert np.isfinite(loss)
            assert trainer.cache_size > 0
            cache_dtypes = {v.dtype for v in trainer._cache.values()}
            assert cache_dtypes == {np.dtype(np.float32)}
            param_dtypes = {p.data.dtype for p in model.parameters()}
            assert param_dtypes == {np.dtype(np.float32)}

    def test_grad_check_pins_float64_under_float32_policy(self):
        with precision("float32"):
            x = Tensor(
                np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True
            )
            # Passes only if finite differences run at grad_check_dtype:
            # eps=1e-6 perturbations vanish in float32 arithmetic.
            check_gradients(lambda t: (t * t).sum(), (x,))
