"""Tests for the hot-path scratch-buffer pool."""

import numpy as np
import pytest

from repro.runtime import (
    Workspace,
    clear_workspace,
    get_workspace,
    hotpaths,
    hotpaths_enabled,
    set_hotpaths,
)


@pytest.fixture(autouse=True)
def _hot_and_clean():
    with hotpaths(True):
        clear_workspace()
        yield
        clear_workspace()


class TestPooling:
    def test_release_then_acquire_reuses_buffer(self):
        ws = Workspace()
        buf = ws.acquire((4, 8), np.float64)
        ws.release(buf)
        again = ws.acquire((4, 8), np.float64)
        assert again is buf
        assert ws.hits == 1 and ws.misses == 1

    def test_shape_and_dtype_key_separately(self):
        ws = Workspace()
        ws.release(ws.acquire((4, 8), np.float64))
        assert ws.acquire((8, 4), np.float64).shape == (8, 4)
        assert ws.acquire((4, 8), np.float32).dtype == np.float32
        assert ws.hits == 0 and ws.misses == 3

    def test_max_per_key_caps_retention(self):
        ws = Workspace(max_per_key=2)
        bufs = [ws.acquire((16,), np.float64) for _ in range(4)]
        for buf in bufs:
            ws.release(buf)
        assert ws.cached_buffers == 2

    def test_double_release_hands_out_one_copy(self):
        ws = Workspace()
        buf = ws.acquire((4,), np.float64)
        ws.release(buf)
        ws.release(buf)
        first = ws.acquire((4,), np.float64)
        second = ws.acquire((4,), np.float64)
        assert first is not second

    def test_views_and_noncontiguous_are_not_pooled(self):
        ws = Workspace()
        base = np.zeros((4, 4))
        ws.release(base[1:])          # view
        ws.release(base.T)            # non-contiguous
        ws.release("not an array")    # nonsense tolerated
        assert ws.cached_buffers == 0

    def test_clear_resets_everything(self):
        ws = Workspace()
        ws.release(ws.acquire((4,), np.float64))
        ws.clear()
        assert ws.cached_buffers == 0
        assert ws.cached_bytes == 0
        assert ws.hits == 0 and ws.misses == 0

    def test_cached_bytes_counts_free_buffers(self):
        ws = Workspace()
        ws.release(ws.acquire((8,), np.float64))
        assert ws.cached_bytes == 8 * 8


class TestHotpathToggle:
    def test_context_manager_restores_previous_state(self):
        assert hotpaths_enabled()
        with hotpaths(False):
            assert not hotpaths_enabled()
            with hotpaths(True):
                assert hotpaths_enabled()
            assert not hotpaths_enabled()
        assert hotpaths_enabled()

    def test_set_hotpaths_returns_previous(self):
        previous = set_hotpaths(False)
        try:
            assert previous is True
            assert not hotpaths_enabled()
        finally:
            set_hotpaths(previous)

    def test_disabled_pool_degenerates_to_plain_allocation(self):
        ws = Workspace()
        with hotpaths(False):
            buf = ws.acquire((4,), np.float64)
            ws.release(buf)
        assert ws.cached_buffers == 0
        assert ws.hits == 0 and ws.misses == 0

    def test_module_workspace_is_per_thread_singleton(self):
        assert get_workspace() is get_workspace()


class TestWorkspaceLease:
    def test_lease_pins_buffers_and_release_returns_them(self):
        ws = Workspace()
        lease = ws.lease()
        buf = lease.acquire((8, 8), np.float64)
        assert len(lease) == 1
        assert ws.leased_bytes == buf.nbytes
        assert ws.cached_buffers == 0  # pinned, not free
        lease.release()
        assert ws.leased_bytes == 0
        assert ws.acquire((8, 8), np.float64) is buf  # recycled

    def test_zeros_and_full_initialise_contents(self):
        ws = Workspace()
        lease = ws.lease()
        z = lease.zeros((3,), np.float64)
        f = lease.full((3,), np.float64, 7.5)
        assert np.array_equal(z, np.zeros(3))
        assert np.array_equal(f, np.full(3, 7.5))
        lease.release()

    def test_donate_transfers_ownership_out_of_the_pool(self):
        ws = Workspace()
        lease = ws.lease()
        kept = lease.acquire((4, 4), np.float64)
        donated = lease.acquire((2, 2), np.float64)
        lease.donate(donated)
        assert len(lease) == 1
        assert ws.leased_bytes == kept.nbytes
        lease.release()
        # The donated buffer must never re-enter the pool: a fresh acquire
        # of its shape allocates anew instead of handing out the array the
        # caller (a parameter's .grad) still references.
        assert ws.acquire((2, 2), np.float64) is not donated
        assert ws.acquire((4, 4), np.float64) is kept

    def test_donate_unknown_buffer_is_a_noop(self):
        ws = Workspace()
        lease = ws.lease()
        buf = lease.acquire((4,), np.float64)
        lease.donate(np.empty(4))
        assert len(lease) == 1
        assert ws.leased_bytes == buf.nbytes
        lease.release()

    def test_release_is_idempotent(self):
        ws = Workspace()
        lease = ws.lease()
        lease.acquire((4,), np.float64)
        lease.release()
        lease.release()
        assert ws.leased_bytes == 0
        assert ws.cached_buffers == 1
