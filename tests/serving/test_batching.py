"""MicroBatcher unit tests: coalescing, backpressure, shutdown.

These run against a fake ``run_batch`` so the concurrency behaviour is
deterministic: a :class:`_GatedRunner` blocks the worker thread on demand,
letting tests arrange exactly how full the queue is when the behaviour
under test (shedding, draining, coalescing) fires.
"""

import threading

import pytest

from repro.serving import (
    MicroBatcher,
    QueueFullError,
    RequestTimeout,
    ServiceClosed,
)


class _GatedRunner:
    """Echo runner whose first ``calls_to_block`` batches wait on a gate."""

    def __init__(self, calls_to_block: int = 0) -> None:
        self.batches = []
        self.entered = threading.Event()
        self.release = threading.Event()
        self._block_remaining = calls_to_block
        self._lock = threading.Lock()

    def __call__(self, payloads):
        with self._lock:
            should_block = self._block_remaining > 0
            if should_block:
                self._block_remaining -= 1
        self.entered.set()
        if should_block:
            assert self.release.wait(timeout=10.0), "test gate never released"
        self.batches.append(list(payloads))
        return [("ok", p) for p in payloads]


class TestBatching:
    def test_single_request_roundtrip(self):
        runner = _GatedRunner()
        batcher = MicroBatcher(runner, max_batch_size=4, max_wait_us=100)
        try:
            assert batcher.run(7, timeout=5.0) == ("ok", 7)
        finally:
            batcher.close()

    def test_queued_requests_coalesce_into_one_batch(self):
        runner = _GatedRunner(calls_to_block=1)
        batcher = MicroBatcher(
            runner, max_batch_size=8, max_wait_us=200_000, queue_depth=16
        )
        try:
            first = batcher.submit(0)
            assert runner.entered.wait(timeout=5.0)
            # The worker is blocked inside batch #1; these queue up behind
            # it and must coalesce into a single batch #2.
            rest = [batcher.submit(i) for i in (1, 2, 3)]
            runner.release.set()
            assert first.result(timeout=5.0) == ("ok", 0)
            assert [f.result(timeout=5.0) for f in rest] == [
                ("ok", 1), ("ok", 2), ("ok", 3),
            ]
            assert runner.batches == [[0], [1, 2, 3]]
        finally:
            batcher.close()

    def test_max_batch_size_bounds_coalescing(self):
        runner = _GatedRunner(calls_to_block=1)
        batcher = MicroBatcher(
            runner, max_batch_size=2, max_wait_us=200_000, queue_depth=16
        )
        try:
            futures = [batcher.submit(0)]
            assert runner.entered.wait(timeout=5.0)
            futures.extend(batcher.submit(i) for i in (1, 2, 3, 4))
            runner.release.set()
            for i, future in enumerate(futures):
                assert future.result(timeout=5.0) == ("ok", i)
            assert all(len(batch) <= 2 for batch in runner.batches)
        finally:
            batcher.close()

    def test_results_keep_request_order_within_batch(self):
        runner = _GatedRunner(calls_to_block=1)
        batcher = MicroBatcher(
            runner, max_batch_size=16, max_wait_us=200_000, queue_depth=32
        )
        try:
            head = batcher.submit("head")
            assert runner.entered.wait(timeout=5.0)
            futures = {i: batcher.submit(i) for i in range(10)}
            runner.release.set()
            head.result(timeout=5.0)
            for i, future in futures.items():
                assert future.result(timeout=5.0) == ("ok", i)
        finally:
            batcher.close()


class TestBackpressure:
    def test_full_queue_sheds_with_documented_error(self):
        runner = _GatedRunner(calls_to_block=1)
        batcher = MicroBatcher(
            runner, max_batch_size=1, max_wait_us=0, queue_depth=2
        )
        try:
            blocked = batcher.submit("in-flight")
            assert runner.entered.wait(timeout=5.0)
            queued = [batcher.submit(i) for i in range(2)]  # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                batcher.submit("one too many")
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.status == 429
            assert batcher.stats["shed"] == 1
            runner.release.set()
            blocked.result(timeout=5.0)
            for future in queued:
                future.result(timeout=5.0)
        finally:
            batcher.close()

    def test_missed_deadline_raises_request_timeout(self):
        runner = _GatedRunner(calls_to_block=1)
        batcher = MicroBatcher(runner, max_batch_size=1, queue_depth=4)
        try:
            with pytest.raises(RequestTimeout) as excinfo:
                batcher.run("slow", timeout=0.05)
            assert excinfo.value.code == "timeout"
            assert excinfo.value.status == 504
        finally:
            runner.release.set()
            batcher.close()

    def test_runner_exception_propagates_to_every_caller(self):
        def explode(payloads):
            raise RuntimeError("model on fire")

        batcher = MicroBatcher(explode, max_batch_size=4, queue_depth=8)
        try:
            future = batcher.submit(1)
            with pytest.raises(RuntimeError, match="model on fire"):
                future.result(timeout=5.0)
            # The worker survives a failing batch and serves the next one.
            future = batcher.submit(2)
            with pytest.raises(RuntimeError, match="model on fire"):
                future.result(timeout=5.0)
        finally:
            batcher.close()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda p: p, max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda p: p, queue_depth=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda p: p, max_wait_us=-1)


class TestShutdown:
    def test_graceful_close_completes_in_flight_requests(self):
        runner = _GatedRunner(calls_to_block=1)
        batcher = MicroBatcher(
            runner, max_batch_size=4, max_wait_us=0, queue_depth=32
        )
        in_flight = [batcher.submit(i) for i in range(6)]
        assert runner.entered.wait(timeout=5.0)
        closer = threading.Thread(target=batcher.close)
        closer.start()
        runner.release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        # Every request admitted before close() resolved with a result.
        assert [f.result(timeout=1.0) for f in in_flight] == [
            ("ok", i) for i in range(6)
        ]

    def test_submit_after_close_raises_service_closed(self):
        batcher = MicroBatcher(lambda p: list(p), max_batch_size=2)
        batcher.close()
        with pytest.raises(ServiceClosed) as excinfo:
            batcher.submit(1)
        assert excinfo.value.code == "shutting_down"
        assert excinfo.value.status == 503

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(lambda p: list(p), max_batch_size=2)
        batcher.close()
        batcher.close()
        assert batcher.closed
