"""HTTP endpoint tests: routing, payloads, and error-status mapping."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models import build_model
from repro.serving import (
    InferenceService,
    QueueFullError,
    ServiceClosed,
    start_server,
)

_RNG = np.random.default_rng(3)


@pytest.fixture(scope="module")
def served():
    """One shared server for the module: (base_url, service, server)."""
    service = InferenceService(
        build_model("small_cnn", seed=0),
        max_batch_size=8, max_wait_us=500, cache_size=64,
        use_tape=False, name="small_cnn",
    )
    server = start_server(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service, server
    server.shutdown_gracefully()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post_error(url, payload) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, payload)
    return excinfo.value


class TestEndpoints:
    def test_healthz(self, served):
        base, service, _server = served
        status, payload = _get(f"{base}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["signature"] == service.signature

    def test_classify_single(self, served):
        base, _service, _server = served
        x = _RNG.random(784).tolist()
        status, payload = _post(f"{base}/classify", {"input": x})
        assert status == 200
        prediction = payload["prediction"]
        assert 0 <= prediction["label"] < 10
        assert len(prediction["probs"]) == 10
        # Same bytes again: served from the prediction cache, identically.
        _status, again = _post(f"{base}/classify", {"input": x})
        assert again["prediction"]["cached"] is True
        assert again["prediction"]["probs"] == prediction["probs"]

    def test_classify_batch(self, served):
        base, _service, _server = served
        xs = _RNG.random((5, 784)).tolist()
        status, payload = _post(f"{base}/classify", {"inputs": xs})
        assert status == 200
        assert len(payload["predictions"]) == 5

    def test_audit(self, served):
        base, _service, _server = served
        xs = _RNG.random((6, 784)).tolist()
        status, payload = _post(
            f"{base}/audit",
            {"attack": "fgsm", "inputs": xs, "labels": [0, 1, 2, 3, 4, 5],
             "epsilon": 0.1},
        )
        assert status == 200
        assert "fgsm" in payload["robust_accuracy"]

    def test_metrics_exposes_quantile_histograms(self, served):
        base, _service, _server = served
        _post(f"{base}/classify", {"input": _RNG.random(784).tolist()})
        status, payload = _get(f"{base}/metrics")
        assert status == 200
        histograms = payload["metrics"]["histograms"]
        latency = histograms["serving.request_latency_ms"]
        assert {"count", "mean", "p50", "p90", "p99"} <= set(latency)
        assert payload["batcher"]["requests"] >= 1
        assert "cache" in payload


class TestErrorMapping:
    def test_unknown_route_404(self, served):
        base, _service, _server = served
        error = _post_error(f"{base}/nope", {"input": []})
        assert error.code == 404

    def test_malformed_payload_400(self, served):
        base, _service, _server = served
        assert _post_error(f"{base}/classify", {}).code == 400
        assert _post_error(
            f"{base}/classify", {"input": [1.0, 2.0]}
        ).code == 400
        assert _post_error(
            f"{base}/audit", {"attack": "fgsm"}
        ).code == 400

    def test_unknown_attack_spec_400(self, served):
        base, _service, _server = served
        error = _post_error(
            f"{base}/audit",
            {"attack": "definitely_not_an_attack",
             "inputs": [[0.0] * 784], "labels": [0]},
        )
        assert error.code == 400

    def test_overload_maps_to_429(self, served, monkeypatch):
        base, service, _server = served

        def shed(*args, **kwargs):
            raise QueueFullError("request queue is full; request shed")

        monkeypatch.setattr(service, "classify", shed)
        error = _post_error(
            f"{base}/classify", {"input": [0.0] * 784}
        )
        assert error.code == 429
        assert json.loads(error.read())["error"] == "overloaded"

    def test_shutdown_maps_to_503(self, served, monkeypatch):
        base, service, _server = served

        def closed(*args, **kwargs):
            raise ServiceClosed("batcher is shut down")

        monkeypatch.setattr(service, "classify", closed)
        error = _post_error(
            f"{base}/classify", {"input": [0.0] * 784}
        )
        assert error.code == 503
        assert json.loads(error.read())["error"] == "shutting_down"
