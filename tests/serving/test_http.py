"""HTTP endpoint tests: routing, payloads, and error-status mapping."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models import build_model
from repro.serving import (
    InferenceService,
    QueueFullError,
    ServiceClosed,
    start_server,
)

_RNG = np.random.default_rng(3)


@pytest.fixture(scope="module")
def served():
    """One shared server for the module: (base_url, service, server)."""
    service = InferenceService(
        build_model("small_cnn", seed=0),
        max_batch_size=8, max_wait_us=500, cache_size=64,
        use_tape=False, name="small_cnn",
    )
    server = start_server(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service, server
    server.shutdown_gracefully()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post_error(url, payload) -> urllib.error.HTTPError:
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(url, payload)
    return excinfo.value


class TestEndpoints:
    def test_healthz(self, served):
        base, service, _server = served
        status, payload = _get(f"{base}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["signature"] == service.signature

    def test_classify_single(self, served):
        base, _service, _server = served
        x = _RNG.random(784).tolist()
        status, payload = _post(f"{base}/classify", {"input": x})
        assert status == 200
        prediction = payload["prediction"]
        assert 0 <= prediction["label"] < 10
        assert len(prediction["probs"]) == 10
        # Same bytes again: served from the prediction cache, identically.
        _status, again = _post(f"{base}/classify", {"input": x})
        assert again["prediction"]["cached"] is True
        assert again["prediction"]["probs"] == prediction["probs"]

    def test_classify_batch(self, served):
        base, _service, _server = served
        xs = _RNG.random((5, 784)).tolist()
        status, payload = _post(f"{base}/classify", {"inputs": xs})
        assert status == 200
        assert len(payload["predictions"]) == 5

    def test_audit(self, served):
        base, _service, _server = served
        xs = _RNG.random((6, 784)).tolist()
        status, payload = _post(
            f"{base}/audit",
            {"attack": "fgsm", "inputs": xs, "labels": [0, 1, 2, 3, 4, 5],
             "epsilon": 0.1},
        )
        assert status == 200
        assert "fgsm" in payload["robust_accuracy"]

    def test_metrics_exposes_quantile_histograms(self, served):
        base, _service, _server = served
        _post(f"{base}/classify", {"input": _RNG.random(784).tolist()})
        status, payload = _get(f"{base}/metrics")
        assert status == 200
        histograms = payload["metrics"]["histograms"]
        latency = histograms["serving.request_latency_ms"]
        assert {"count", "mean", "p50", "p90", "p99"} <= set(latency)
        assert payload["batcher"]["requests"] >= 1
        assert "cache" in payload


class TestErrorMapping:
    def test_unknown_route_404(self, served):
        base, _service, _server = served
        error = _post_error(f"{base}/nope", {"input": []})
        assert error.code == 404

    def test_malformed_payload_400(self, served):
        base, _service, _server = served
        assert _post_error(f"{base}/classify", {}).code == 400
        assert _post_error(
            f"{base}/classify", {"input": [1.0, 2.0]}
        ).code == 400
        assert _post_error(
            f"{base}/audit", {"attack": "fgsm"}
        ).code == 400

    def test_unknown_attack_spec_400(self, served):
        base, _service, _server = served
        error = _post_error(
            f"{base}/audit",
            {"attack": "definitely_not_an_attack",
             "inputs": [[0.0] * 784], "labels": [0]},
        )
        assert error.code == 400

    def test_overload_maps_to_429(self, served, monkeypatch):
        base, service, _server = served

        def shed(*args, **kwargs):
            raise QueueFullError("request queue is full; request shed")

        monkeypatch.setattr(service, "classify", shed)
        error = _post_error(
            f"{base}/classify", {"input": [0.0] * 784}
        )
        assert error.code == 429
        assert json.loads(error.read())["error"] == "overloaded"

    def test_shutdown_maps_to_503(self, served, monkeypatch):
        base, service, _server = served

        def closed(*args, **kwargs):
            raise ServiceClosed("batcher is shut down")

        monkeypatch.setattr(service, "classify", closed)
        error = _post_error(
            f"{base}/classify", {"input": [0.0] * 784}
        )
        assert error.code == 503
        assert json.loads(error.read())["error"] == "shutting_down"


class TestOpenMetrics:
    def test_openmetrics_accept_header_gets_text_exposition(self, served):
        base, _service, _server = served
        _post(f"{base}/classify", {"input": _RNG.random(784).tolist()})
        request = urllib.request.Request(
            f"{base}/metrics",
            headers={"Accept": "application/openmetrics-text"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            content_type = response.headers.get("Content-Type")
            body = response.read().decode()
        assert content_type.startswith("application/openmetrics-text")
        assert "# TYPE repro_serving_batcher_requests gauge" in body
        assert body.endswith("# EOF\n")

    def test_text_plain_accept_also_gets_openmetrics(self, served):
        base, _service, _server = served
        request = urllib.request.Request(
            f"{base}/metrics", headers={"Accept": "text/plain"}
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.read().decode().endswith("# EOF\n")

    def test_json_stays_the_default(self, served):
        base, _service, _server = served
        status, payload = _get(f"{base}/metrics")
        assert status == 200
        assert "metrics" in payload and "batcher" in payload


def _post_traced(url, payload, header):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json",
                 "X-Repro-Trace": header},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return (
            response.headers.get("X-Repro-Trace"),
            json.loads(response.read()),
        )


def _wait_for_spans(run, name, count, timeout=10.0):
    import time as time_module

    from repro.telemetry import load_records

    deadline = time_module.monotonic() + timeout
    while time_module.monotonic() < deadline:
        spans = [
            r for r in load_records(run)
            if r.get("type") == "span" and r.get("name") == name
        ]
        if len(spans) >= count:
            return spans
        time_module.sleep(0.02)
    raise AssertionError(f"never saw {count} {name!r} span(s) in {run}")


class TestTracePropagation:
    def test_traced_classify_produces_one_merged_trace(self, served,
                                                       tmp_path):
        """The acceptance scenario: client trace -> request -> batch."""
        from repro import telemetry as tel
        from repro.telemetry.trace import TraceCollector

        base, _service, _server = served
        client = "ab" * 8 + "-" + "cd" * 8
        run = str(tmp_path / "run.jsonl")
        with tel.capture(jsonl=run):
            echoed, payload = _post_traced(
                f"{base}/classify",
                {"input": _RNG.random(784).tolist()},
                client,
            )
            assert "prediction" in payload
            (request_span,) = _wait_for_spans(run, "serving.request", 1)
            (batch_span,) = _wait_for_spans(run, "serving.batch", 1)

        trace_id, _, span_id = echoed.partition("-")
        assert trace_id == "ab" * 8
        assert span_id == request_span["span_id"]
        assert request_span["trace_id"] == "ab" * 8
        assert request_span["parent_id"] == "cd" * 8
        assert batch_span["trace_id"] == "ab" * 8
        assert batch_span["parent_id"] == request_span["span_id"]

        collector = TraceCollector.from_run(run)
        assert collector.trace_ids() == ["ab" * 8]
        text = collector.render_one("ab" * 8)
        assert "serving.request" in text and "serving.batch" in text

    def test_untraced_request_has_no_trace_header(self, served):
        base, _service, _server = served
        request = urllib.request.Request(
            f"{base}/classify",
            data=json.dumps({"input": _RNG.random(784).tolist()}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers.get("X-Repro-Trace") is None

    def test_malformed_trace_header_is_ignored(self, served):
        base, _service, _server = served
        echoed, payload = _post_traced(
            f"{base}/classify",
            {"input": _RNG.random(784).tolist()},
            "definitely-not-hex-ids",
        )
        assert echoed is None
        assert "prediction" in payload

    def test_concurrent_requests_never_share_span_stacks(self, served,
                                                         tmp_path):
        """Each handler thread's span must carry its own client's ids."""
        import threading

        from repro import telemetry as tel

        base, _service, _server = served
        run = str(tmp_path / "run.jsonl")
        clients = {f"{i:016x}": f"{i + 64:016x}" for i in range(1, 9)}
        results = {}
        errors = []

        def fire(trace_id, span_id):
            try:
                echoed, _payload = _post_traced(
                    f"{base}/classify",
                    {"input": _RNG.random(784).tolist()},
                    f"{trace_id}-{span_id}",
                )
                results[trace_id] = echoed
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        with tel.capture(jsonl=run):
            threads = [
                threading.Thread(target=fire, args=item)
                for item in clients.items()
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            spans = _wait_for_spans(
                run, "serving.request", len(clients)
            )
        assert not errors, errors[0]
        # Every response echoes its own trace id, not another client's.
        for trace_id, echoed in results.items():
            assert echoed.split("-")[0] == trace_id
        # Every recorded span parents on exactly its client's span id.
        by_trace = {s["trace_id"]: s for s in spans}
        assert set(by_trace) == set(clients)
        for trace_id, span in by_trace.items():
            assert span["parent_id"] == clients[trace_id]
