"""InferenceService tests: cache semantics, equivalence, concurrency."""

import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.serving import InferenceService, ServiceClosed

_RNG = np.random.default_rng(7)


def _service(**kwargs):
    defaults = dict(
        max_batch_size=8, max_wait_us=500, queue_depth=64,
        cache_size=128, use_tape=False, name="small_cnn",
    )
    defaults.update(kwargs)
    return InferenceService(build_model("small_cnn", seed=0), **defaults)


def _example(seed=0):
    return np.random.default_rng(seed).random((1, 28, 28))


class TestClassify:
    def test_single_example_prediction(self):
        with _service() as service:
            prediction = service.classify(_example())
            assert 0 <= prediction.label < 10
            assert prediction.probs.shape == (10,)
            assert prediction.probs.sum() == pytest.approx(1.0)
            assert prediction.cached is False

    def test_flat_input_is_reshaped(self):
        with _service() as service:
            nested = service.classify(_example(3))
            flat = service.classify(_example(3).ravel())
            assert flat.label == nested.label

    def test_bad_shape_rejected(self):
        with _service() as service:
            with pytest.raises(ValueError, match="elements"):
                service.classify(np.zeros(100))
            with pytest.raises(ValueError, match="per-example"):
                service.classify_many(np.zeros((2, 99)))

    def test_classify_many_matches_singles(self):
        batch = _RNG.random((6, 1, 28, 28))
        with _service(cache_size=0) as service:
            singles = [service.classify(x) for x in batch]
            with _service(cache_size=0) as fresh:
                many = fresh.classify_many(batch)
            assert [p.label for p in many] == [p.label for p in singles]
            for a, b in zip(many, singles):
                assert np.allclose(a.probs, b.probs, atol=1e-9)

    def test_prediction_matches_model_predict(self):
        batch = _RNG.random((4, 1, 28, 28))
        model = build_model("small_cnn", seed=0)
        with _service() as service:
            predictions = service.classify_many(batch)
        assert [p.label for p in predictions] == list(model.predict(batch))


class TestPredictionCache:
    def test_cache_hit_is_bit_identical_to_cold_inference(self):
        x = _example(11)
        with _service() as service:
            cold = service.classify(x)
            hot = service.classify(x)
            assert cold.cached is False
            assert hot.cached is True
            assert hot.label == cold.label
            assert hot.probs.tobytes() == cold.probs.tobytes()

    def test_cache_returns_private_copies(self):
        x = _example(12)
        with _service() as service:
            first = service.classify(x)
            first.probs[:] = -1.0  # clobber the caller's copy
            again = service.classify(x)
            assert again.cached is True
            assert np.all(again.probs >= 0.0)

    def test_cache_disabled_never_reports_hits(self):
        x = _example(13)
        with _service(cache_size=0) as service:
            assert service.classify(x).cached is False
            assert service.classify(x).cached is False
            assert service.metrics()["cache"]["capacity"] == 0

    def test_distinct_inputs_do_not_collide(self):
        with _service() as service:
            a = service.classify(_example(1))
            b = service.classify(_example(2))
            assert not (
                a.label == b.label
                and a.probs.tobytes() == b.probs.tobytes()
            )

    def test_cache_key_scoped_by_model_signature(self):
        x = _example(21)
        with _service() as service_a:
            sig_a = service_a.signature
        service_b = InferenceService(
            build_model("small_cnn", seed=1), name="small_cnn",
            use_tape=False,
        )
        with service_b:
            assert service_b.signature != sig_a


class TestCompiledTapeServing:
    def test_tape_replay_matches_eager_forward(self):
        batch = _RNG.random((12, 1, 28, 28))
        with _service(cache_size=0, use_tape=False) as eager, \
                _service(cache_size=0, use_tape=True) as taped:
            eager_preds = [eager.classify(x) for x in batch]
            taped_preds = [taped.classify(x) for x in batch]
            stats = taped.metrics()["tape"]
        assert stats["disabled"] is None
        assert stats["hits"] > 0
        assert [p.label for p in taped_preds] == [
            p.label for p in eager_preds
        ]
        for a, b in zip(taped_preds, eager_preds):
            assert np.allclose(a.probs, b.probs, atol=1e-9)


class TestConcurrency:
    def test_concurrent_clients_see_order_independent_results(self):
        """Interleaving must never cross responses between clients."""
        inputs = _RNG.random((24, 1, 28, 28))
        with _service(cache_size=0) as reference:
            expected = [reference.classify(x) for x in inputs]
        with _service(cache_size=0, max_batch_size=6, max_wait_us=2000) \
                as service:
            results = [None] * len(inputs)
            errors = []

            def client(index):
                try:
                    results[index] = service.classify(inputs[index])
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(inputs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
        assert not errors
        assert all(r is not None for r in results)
        for got, want in zip(results, expected):
            assert got.label == want.label
            assert np.allclose(got.probs, want.probs, atol=1e-9)

    def test_concurrent_batches_actually_coalesce(self):
        inputs = _RNG.random((16, 1, 28, 28))
        with _service(cache_size=0, max_batch_size=8, max_wait_us=20_000) \
                as service:
            threads = [
                threading.Thread(target=service.classify, args=(x,))
                for x in inputs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            stats = service.metrics()["batcher"]
        # 16 requests through a single-worker batcher with a 20ms window
        # must need fewer than 16 forward passes.
        assert stats["requests"] == 16
        assert stats["batches"] < 16


class TestAuditAndLifecycle:
    def test_audit_reports_per_spec_accuracy(self):
        x = _RNG.random((10, 1, 28, 28))
        y = np.arange(10) % 10
        with _service() as service:
            report = service.audit(
                ["clean", "fgsm", "bim:num_steps=2"], x, y, epsilon=0.1
            )
        rows = report["robust_accuracy"]
        assert set(rows) == {"clean", "fgsm", "bim:num_steps=2"}
        assert all(0.0 <= v <= 1.0 for v in rows.values())
        assert report["examples"] == 10
        assert report["epsilon"] == 0.1

    def test_audit_leaves_no_parameter_gradients(self):
        x = _RNG.random((4, 1, 28, 28))
        model = build_model("small_cnn", seed=0)
        service = InferenceService(model, use_tape=False)
        with service:
            service.audit(["fgsm"], x, np.zeros(4, dtype=np.int64))
        assert all(p.grad is None for p in model.parameters())

    def test_audit_label_count_mismatch(self):
        with _service() as service:
            with pytest.raises(ValueError, match="labels"):
                service.audit(["clean"], _RNG.random((3, 1, 28, 28)), [0, 1])

    def test_classify_after_close_raises_service_closed(self):
        service = _service()
        service.close()
        with pytest.raises(ServiceClosed):
            service.classify(_example())

    def test_healthz_and_metrics_payloads(self):
        with _service() as service:
            service.classify(_example(5))
            service.classify(_example(5))
            health = service.healthz()
            metrics = service.metrics()
        assert health["status"] == "ok"
        assert health["model"] == "small_cnn"
        assert health["signature"] == service.signature
        assert metrics["cache"]["hits"] == 1
        assert metrics["batcher"]["requests"] >= 1
        snapshot = metrics["metrics"]
        latency = snapshot["histograms"].get("serving.request_latency_ms")
        assert latency is not None and latency["count"] >= 2
        assert {"p50", "p90", "p99"} <= set(latency)
