"""Fixtures keeping the process-wide telemetry state clean between tests."""

import pytest

from repro import telemetry as tel


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Reset enabled flag, metrics and sinks around every telemetry test."""
    previous = tel.set_enabled(False)
    tel.reset_metrics()
    yield
    tel.set_enabled(previous)
    tel.reset_metrics()
    # A test that leaks a sink would silently pollute every later test.
    from repro.telemetry import core

    assert not core._sinks, f"test leaked sinks: {core._sinks}"


@pytest.fixture
def enabled():
    """Enable telemetry for one test."""
    tel.set_enabled(True)
    yield
    tel.set_enabled(False)


@pytest.fixture
def memory_sink():
    """An attached InMemorySink, detached on teardown."""
    sink = tel.InMemorySink()
    tel.add_sink(sink)
    yield sink
    tel.remove_sink(sink)
