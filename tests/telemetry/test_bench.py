"""Perf-regression tracker tests: records, classification, rendering."""

import json

import pytest

from repro.telemetry.bench import (
    BenchRecord,
    diff_records,
    load_bench_dir,
    render_diff,
)


def _record(name, **metrics):
    record = BenchRecord(name)
    for metric, (value, direction) in metrics.items():
        record.add(metric, value, unit="x", direction=direction)
    return record


class TestBenchRecord:
    def test_round_trips_through_disk(self, tmp_path):
        record = BenchRecord(
            "serving_throughput", context={"dtype": "float64"}, created=1.5,
        )
        record.add("speedup", 2.885, unit="x", direction="higher")
        path = record.save(str(tmp_path))
        assert path.endswith("serving_throughput.bench.json")
        loaded = BenchRecord.load(path)
        assert loaded.name == record.name
        assert loaded.context == {"dtype": "float64"}
        assert loaded.created == 1.5
        assert loaded.metrics == record.metrics

    def test_schema_field_is_stable(self, tmp_path):
        path = _record("b", m=(1.0, None)).save(str(tmp_path))
        with open(path) as handle:
            assert json.load(handle)["schema"] == 1

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            BenchRecord("b").add("m", 1.0, direction="sideways")

    def test_load_bench_dir_keys_by_name(self, tmp_path):
        _record("alpha", m=(1.0, None)).save(str(tmp_path))
        _record("beta", m=(2.0, None)).save(str(tmp_path))
        records = load_bench_dir(str(tmp_path))
        assert set(records) == {"alpha", "beta"}

    def test_load_bench_dir_empty(self, tmp_path):
        assert load_bench_dir(str(tmp_path / "nope")) == {}


class TestDiffClassification:
    def test_injected_throughput_regression_is_flagged(self):
        """The acceptance scenario: a 20% throughput drop fails the diff."""
        baseline = {"serving": _record("serving", rps=(5000.0, "higher"))}
        current = {"serving": _record("serving", rps=(4000.0, "higher"))}
        (row,) = diff_records(baseline, current, tolerance=0.10)
        assert row.status == "regression"
        assert row.change == pytest.approx(-0.20)
        assert "FAIL: 1 regression(s)" in render_diff([row])

    def test_within_tolerance_is_ok(self):
        baseline = {"b": _record("b", speedup=(2.0, "higher"))}
        current = {"b": _record("b", speedup=(1.9, "higher"))}
        (row,) = diff_records(baseline, current, tolerance=0.10)
        assert row.status == "ok"

    def test_improvement_is_reported_not_failed(self):
        baseline = {"b": _record("b", speedup=(2.0, "higher"))}
        current = {"b": _record("b", speedup=(3.0, "higher"))}
        (row,) = diff_records(baseline, current)
        assert row.status == "improved"
        assert "ok: no regressions" in render_diff([row])

    def test_lower_is_better_direction(self):
        baseline = {"b": _record("b", latency=(10.0, "lower"))}
        worse = {"b": _record("b", latency=(15.0, "lower"))}
        better = {"b": _record("b", latency=(5.0, "lower"))}
        assert diff_records(baseline, worse)[0].status == "regression"
        assert diff_records(baseline, better)[0].status == "improved"

    def test_directionless_metrics_are_informational(self):
        baseline = {"b": _record("b", epoch_ms=(100.0, None))}
        current = {"b": _record("b", epoch_ms=(500.0, None))}
        (row,) = diff_records(baseline, current)
        assert row.status == "info"

    def test_missing_bench_is_skipped_not_failed(self):
        baseline = {"b": _record("b", speedup=(2.0, "higher"))}
        (row,) = diff_records(baseline, {})
        assert row.status == "missing"
        assert row.current is None
        text = render_diff([row])
        assert "ok:" in text and "(0 metric(s) compared)" in text

    def test_missing_metric_is_skipped(self):
        baseline = {"b": _record("b", speedup=(2.0, "higher"))}
        current = {"b": _record("b", other=(1.0, "higher"))}
        (row,) = diff_records(baseline, current)
        assert row.metric == "speedup"
        assert row.status == "missing"

    def test_zero_baseline_uses_directional_sign(self):
        baseline = {"b": _record("b", m=(0.0, "higher"))}
        assert diff_records(
            baseline, {"b": _record("b", m=(-1.0, "higher"))}
        )[0].status == "regression"
        assert diff_records(
            baseline, {"b": _record("b", m=(1.0, "higher"))}
        )[0].status == "ok"

    def test_custom_tolerance(self):
        baseline = {"b": _record("b", speedup=(2.0, "higher"))}
        current = {"b": _record("b", speedup=(1.7, "higher"))}
        assert diff_records(
            baseline, current, tolerance=0.10
        )[0].status == "regression"
        assert diff_records(
            baseline, current, tolerance=0.20
        )[0].status == "ok"

    def test_render_empty(self):
        assert "no baseline records" in render_diff([])


class TestCommittedBaselines:
    def test_committed_baselines_self_diff_clean(self):
        """The acceptance scenario: repo baselines diff clean vs themselves."""
        import os

        results = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks", "results"
        )
        records = load_bench_dir(results)
        assert records, "no committed *.bench.json baselines found"
        rows = diff_records(records, records)
        assert rows
        assert all(row.status in ("ok", "info") for row in rows)
