"""Tests for telemetry core: stopwatch, spans, metrics, events."""

import threading
import time

import pytest

from repro import telemetry as tel
from repro.telemetry import (
    NULL_SPAN,
    Histogram,
    MetricsRegistry,
    Stopwatch,
    current_span,
)


class TestStopwatch:
    def test_segments_accumulate(self):
        watch = Stopwatch()
        for _ in range(3):
            watch.start()
            time.sleep(0.002)
            watch.stop()
        assert watch.total >= 0.006
        assert watch.elapsed <= watch.total

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="before start"):
            Stopwatch().stop()

    def test_unbalanced_exit_raises(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch:
                watch.stop()  # consumes the running segment

    def test_exit_never_masks_exceptions(self):
        watch = Stopwatch()
        with pytest.raises(KeyError):
            with watch:
                watch.stop()
                raise KeyError("original")

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.001)
        watch.reset()
        assert watch.total == 0.0
        assert watch.elapsed == 0.0


class TestSpanNesting:
    def test_child_duration_folds_into_parent(self, enabled):
        with tel.span("outer") as outer:
            with tel.span("inner"):
                time.sleep(0.003)
        assert "inner" in outer.children
        count, total = outer.children["inner"]
        assert count == 1
        assert total >= 0.003
        assert outer.duration >= total

    def test_grandchildren_fold_with_slash_paths(self, enabled):
        with tel.span("epoch") as epoch:
            with tel.span("forward"):
                with tel.span("attack"):
                    time.sleep(0.002)
        assert set(epoch.children) == {"forward", "forward/attack"}
        assert epoch.children["forward/attack"][1] >= 0.002

    def test_repeated_children_accumulate(self, enabled):
        with tel.span("epoch") as epoch:
            for _ in range(4):
                with tel.span("forward"):
                    pass
        assert epoch.children["forward"][0] == 4

    def test_self_seconds_excludes_direct_children(self, enabled):
        with tel.span("outer") as outer:
            with tel.span("inner"):
                time.sleep(0.004)
        assert outer.self_seconds == pytest.approx(
            outer.duration - outer.children["inner"][1]
        )
        assert outer.self_seconds < outer.duration

    def test_current_span_tracks_stack(self, enabled):
        assert current_span() is None
        with tel.span("a") as a:
            assert current_span() is a
            with tel.span("b") as b:
                assert current_span() is b
            assert current_span() is a
        assert current_span() is None

    def test_note_attaches_attrs(self, enabled):
        with tel.span("epoch", trainer="vanilla") as s:
            s.note(loss=0.25)
        record = s.to_record()
        assert record["attrs"] == {"trainer": "vanilla", "loss": 0.25}

    def test_root_span_emits_nested_does_not(self, enabled, memory_sink):
        with tel.span("root"):
            with tel.span("child"):
                pass
        names = [r["name"] for r in memory_sink.spans()]
        assert names == ["root"]

    def test_emit_true_forces_nested_record(self, enabled, memory_sink):
        with tel.span("root"):
            with tel.span("epoch", emit=True):
                pass
        names = [r["name"] for r in memory_sink.spans()]
        assert names == ["epoch", "root"]

    def test_emit_false_silences_root(self, enabled, memory_sink):
        with tel.span("root", emit=False):
            pass
        assert memory_sink.spans() == []

    def test_to_record_shape(self, enabled):
        with tel.span("epoch", trainer="x") as s:
            with tel.span("forward"):
                pass
        record = s.to_record()
        assert record["type"] == "span"
        assert record["name"] == "epoch"
        assert record["duration"] == s.duration
        assert record["children"]["forward"]["count"] == 1

    def test_thread_local_stacks(self, enabled):
        """Spans on another thread must not fold into this thread's span."""
        results = {}

        def worker():
            tel.set_enabled(True)
            with tel.span("worker-root") as s:
                with tel.span("worker-child"):
                    pass
            results["children"] = dict(s.children)
            results["current_after"] = current_span()

        with tel.span("main-root") as main_span:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results["children"] == {"worker-child": [1, pytest.approx(
            results["children"]["worker-child"][1])]}
        assert results["current_after"] is None
        assert "worker-root" not in main_span.children
        assert "worker-child" not in main_span.children


class TestDisabledMode:
    def test_span_returns_shared_null_singleton(self):
        assert not tel.enabled()
        assert tel.span("anything") is NULL_SPAN
        assert tel.span("other", emit=True, attr=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with tel.span("x") as s:
            s.note(loss=1.0)
        assert s is NULL_SPAN
        assert s.duration == 0.0
        assert s.attrs == {}

    def test_metrics_are_noops(self):
        tel.counter("c")
        tel.gauge("g", 5.0)
        tel.observe("h", 1.0)
        snapshot = tel.get_metrics().snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_set_enabled_returns_previous(self):
        assert tel.set_enabled(True) is False
        assert tel.set_enabled(False) is True

    def test_enabled_flag_is_thread_local(self, enabled):
        seen = {}

        def worker():
            seen["enabled"] = tel.enabled()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # The worker thread starts from the REPRO_TELEMETRY default (off in
        # the test environment), not from this thread's enabled flag.
        assert seen["enabled"] is False
        assert tel.enabled() is True


class TestMetrics:
    def test_counter_math(self, enabled):
        tel.counter("n")
        tel.counter("n")
        tel.counter("n", 3)
        assert tel.get_metrics().snapshot()["counters"]["n"] == 5.0

    def test_gauge_keeps_latest(self, enabled):
        tel.gauge("bytes", 10)
        tel.gauge("bytes", 7)
        assert tel.get_metrics().snapshot()["gauges"]["bytes"] == 7.0

    def test_histogram_math(self):
        hist = Histogram()
        for value in (1.0, 2.0, 6.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 9.0
        assert hist.min == 1.0
        assert hist.max == 6.0
        assert hist.mean == 3.0

    def test_empty_histogram_dict(self):
        assert Histogram().to_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_quantile_estimates_bracket_exact_percentiles(self):
        hist = Histogram()
        for value in range(1, 1001):  # 1..1000, uniform
            hist.observe(float(value))
        # Log-spaced buckets (8 per decade) bound the relative error.
        assert hist.quantile(0.5) == pytest.approx(500.0, rel=0.35)
        assert hist.quantile(0.9) == pytest.approx(900.0, rel=0.35)
        assert hist.quantile(0.99) == pytest.approx(990.0, rel=0.35)
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 1000.0

    def test_quantile_exact_at_min_max_and_validates_range(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0  # empty
        hist.observe(3.0)
        assert hist.quantile(0.0) == 3.0
        assert hist.quantile(1.0) == 3.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_quantile_handles_zero_and_negative_observations(self):
        hist = Histogram()
        for value in (-5.0, 0.0, 2.0):
            hist.observe(value)
        assert hist.min == -5.0
        q = hist.quantile(0.01)
        assert -5.0 <= q <= 2.0

    def test_to_dict_percentiles_ordered(self):
        hist = Histogram()
        for value in (1.0, 2.0, 4.0, 8.0, 100.0):
            hist.observe(value)
        summary = hist.to_dict()
        assert summary["min"] <= summary["p50"] <= summary["p90"]
        assert summary["p90"] <= summary["p99"] <= summary["max"]

    def test_observe_feeds_registry(self, enabled):
        tel.observe("retired", 4)
        tel.observe("retired", 8)
        summary = tel.get_metrics().snapshot()["histograms"]["retired"]
        assert summary["count"] == 2
        assert summary["mean"] == 6.0

    def test_reset_clears_everything(self, enabled):
        tel.counter("a")
        tel.gauge("b", 1)
        tel.observe("c", 1)
        tel.reset_metrics()
        assert tel.get_metrics().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_registry_is_thread_safe(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.snapshot()["counters"]["n"] == 4000.0


class TestEvents:
    def test_event_dispatches_to_sinks(self, memory_sink):
        tel.event("checkpoint.saved", epoch=3, path="x.npz")
        events = memory_sink.events("checkpoint.saved")
        assert len(events) == 1
        assert events[0]["fields"] == {"epoch": 3, "path": "x.npz"}

    def test_event_bypasses_enabled_flag(self, memory_sink):
        assert not tel.enabled()
        tel.event("early_stop.triggered", epoch=1)
        assert memory_sink.events("early_stop.triggered")

    def test_event_without_sinks_is_noop(self):
        tel.event("nobody.listening")  # must not raise


class TestCapture:
    def test_capture_enables_and_restores(self):
        assert not tel.enabled()
        with tel.capture():
            assert tel.enabled()
        assert not tel.enabled()

    def test_capture_emits_metrics_snapshot(self):
        sink = tel.InMemorySink()
        with tel.capture(sink=sink):
            tel.counter("runs")
        metrics = sink.metrics()
        assert metrics is not None
        assert metrics["counters"]["runs"] == 1.0

    def test_capture_resets_metrics_by_default(self):
        tel.set_enabled(True)
        tel.counter("stale")
        tel.set_enabled(False)
        sink = tel.InMemorySink()
        with tel.capture(sink=sink):
            pass
        assert "stale" not in sink.metrics()["counters"]

    def test_capture_reset_false_keeps_metrics(self):
        tel.set_enabled(True)
        tel.counter("kept")
        tel.set_enabled(False)
        sink = tel.InMemorySink()
        with tel.capture(sink=sink, reset=False):
            pass
        assert sink.metrics()["counters"]["kept"] == 1.0

    def test_capture_detaches_sinks_on_exit(self):
        sink = tel.InMemorySink()
        with tel.capture(sink=sink):
            pass
        tel.event("after.scope")
        assert not sink.events("after.scope")
