"""Integration tests: instrumented training/attacks/eval end to end."""

import pytest

from repro import telemetry as tel
from repro.attacks import (
    AttackLoop,
    BackpropGradient,
    GradientStep,
    LinfBoxProjection,
    Misclassified,
    SignStep,
)
from repro.cli import main
from repro.data import DataLoader
from repro.defenses import Checkpointer, EarlyStopping, build_trainer
from repro.eval import RobustnessEvaluator
from repro.models import mnist_mlp
from repro.runtime import compiled_enabled
from repro.telemetry import InMemorySink, build_report


def fit_epochwise(train, sink, epochs=3, verbose=False):
    model = mnist_mlp(seed=0)
    trainer = build_trainer(
        "proposed", model, epsilon=0.25, lr=2e-3, warmup_epochs=1
    )
    with tel.capture(sink=sink):
        history = trainer.fit(
            DataLoader(train, batch_size=64, rng=0),
            epochs=epochs,
            verbose=verbose,
        )
    return trainer, history


class TestEpochwiseRun:
    """The ISSUE acceptance scenario: per-epoch phase records from a run."""

    @pytest.fixture(scope="class")
    def run(self, digits_small):
        train, _test = digits_small
        sink = InMemorySink()
        trainer, history = fit_epochwise(train, sink)
        return sink, trainer, history

    def test_one_epoch_span_per_epoch(self, run):
        sink, trainer, history = run
        spans = sink.spans("epoch")
        assert len(spans) == len(history.epoch_seconds) == 3
        assert [s["attrs"]["epoch"] for s in spans] == [0, 1, 2]
        assert all(s["attrs"]["trainer"] == "epochwise_adv" for s in spans)
        assert all("loss" in s["attrs"] for s in spans)

    def test_epoch_durations_match_epoch_timer_within_1pct(self, run):
        sink, _trainer, history = run
        spans = sink.spans("epoch")
        for span, timed in zip(spans, history.epoch_seconds):
            assert span["duration"] == pytest.approx(timed, rel=0.01)

    def test_phase_breakdown(self, run):
        sink, _trainer, _history = run
        report = build_report(sink.records)
        warmup, *adversarial = report.epochs
        # Warmup epoch trains on clean examples only: no attack phase.
        assert warmup.phases["attack"] == 0.0
        for row in adversarial:
            assert row.phases["attack"] > 0.0
        for row in report.epochs:
            if compiled_enabled():
                # The compiled tape fuses forward+backward into replayed
                # trace time, reported as its own phase.
                assert row.phases["tape"] > 0.0
            else:
                assert row.phases["forward"] > 0.0
                assert row.phases["backward"] > 0.0
            assert row.phases["optimizer"] > 0.0
            assert sum(row.phases.values()) <= row.total
        assert report.time_per_epoch("epochwise_adv") == pytest.approx(
            sum(r.total for r in report.epochs) / 3
        )

    def test_data_counters(self, run, digits_small):
        sink, _trainer, _history = run
        train, _test = digits_small
        batches_per_epoch = len(DataLoader(train, batch_size=64, rng=0))
        counters = sink.metrics()["counters"]
        assert counters["data.batches"] == 3 * batches_per_epoch
        assert counters["data.examples"] == 3 * len(train)

    def test_workspace_gauges(self, run):
        sink, _trainer, _history = run
        gauges = sink.metrics()["gauges"]
        assert "workspace.pool.hits" in gauges
        assert "workspace.pool.misses" in gauges
        assert gauges["workspace.pool.high_water_bytes"] >= gauges[
            "workspace.pool.bytes"
        ]

    def test_report_renders(self, run):
        sink, _trainer, _history = run
        text = build_report(sink.records).render()
        assert "epochwise_adv" in text
        assert "attack_s" in text


class TestAttackLoopCounters:
    def make_loop(self, model, early_stop):
        return AttackLoop(
            model,
            GradientStep(
                BackpropGradient(model),
                SignStep(0.025),
                LinfBoxProjection(0.25),
            ),
            num_steps=10,
            stop=Misclassified(),
            early_stop=early_stop,
        )

    def test_early_stop_counters(self, trained_mlp, tiny_batch, enabled):
        x, y = tiny_batch
        self.make_loop(trained_mlp, True).run(x, y)
        snapshot = tel.get_metrics().snapshot()
        counters = snapshot["counters"]
        assert counters["attack.loop.runs"] == 1
        assert 1 <= counters["attack.loop.iterations"] <= 10
        # Every example either retired early or survived the full budget.
        assert (
            counters["attack.early_stop.retired"]
            + counters["attack.early_stop.survivors"]
        ) == len(x)
        hist = snapshot["histograms"]["attack.early_stop.retired_per_step"]
        assert hist["total"] == counters["attack.early_stop.retired"]

    def test_unmasked_counters(self, trained_mlp, tiny_batch, enabled):
        x, y = tiny_batch
        self.make_loop(trained_mlp, False).run(x, y)
        counters = tel.get_metrics().snapshot()["counters"]
        assert counters["attack.loop.runs"] == 1
        assert counters["attack.loop.iterations"] == 10
        assert "attack.early_stop.retired" not in counters

    def test_disabled_records_nothing(self, trained_mlp, tiny_batch):
        x, y = tiny_batch
        self.make_loop(trained_mlp, True).run(x, y)
        assert tel.get_metrics().snapshot()["counters"] == {}


class TestEvalInstrumentation:
    def test_eval_cells_emit_spans(self, trained_mlp, tiny_batch, enabled,
                                   memory_sink):
        x, y = tiny_batch
        suite = RobustnessEvaluator.from_specs(
            ("original", "fgsm"), epsilon=0.25
        )
        results = suite.evaluate(trained_mlp, x, y)
        cells = memory_sink.spans("eval.cell")
        assert [c["attrs"]["attack"] for c in cells] == ["original", "fgsm"]
        for cell in cells:
            assert cell["attrs"]["accuracy"] == results[
                cell["attrs"]["attack"]
            ]
        counters = tel.get_metrics().snapshot()["counters"]
        assert counters["eval.examples"] == 2 * len(x)


class TestCallbackEvents:
    def test_checkpointer_emits_events(self, tmp_path, memory_sink):
        model = mnist_mlp(seed=0)
        ckpt = Checkpointer(str(tmp_path), every=2, keep_best=True)
        ckpt.on_epoch_end(2, model, 0.5)
        events = memory_sink.events("checkpoint.saved")
        assert [e["fields"]["kind"] for e in events] == ["periodic", "best"]
        assert events[1]["fields"]["metric"] == 0.5

    def test_early_stopping_emits_event(self, memory_sink):
        model = mnist_mlp(seed=0)
        stopper = EarlyStopping(patience=1, mode="max")
        stopper.on_epoch_end(1, model, 0.9)
        assert stopper.on_epoch_end(2, model, 0.8)
        [triggered] = memory_sink.events("early_stop.triggered")
        assert triggered["fields"] == {"epoch": 2, "best": 0.9, "patience": 1}

    def test_verbose_fit_prints_events(self, tmp_path, digits_small, capsys):
        train, _test = digits_small
        model = mnist_mlp(seed=0)
        trainer = build_trainer("vanilla", model, epsilon=0.25, lr=2e-3)
        trainer.fit(
            DataLoader(train, batch_size=64, rng=0),
            epochs=2,
            verbose=True,
            callbacks=[Checkpointer(str(tmp_path), every=1, keep_best=False)],
        )
        out = capsys.readouterr().out
        assert "[telemetry] checkpoint.saved" in out
        assert "kind=periodic" in out

    def test_epochwise_cache_reset_event(self, digits_small, memory_sink):
        train, _test = digits_small
        model = mnist_mlp(seed=0)
        trainer = build_trainer(
            "proposed", model, epsilon=0.25, lr=2e-3,
            warmup_epochs=0, reset_interval=1,
        )
        with tel.capture(sink=InMemorySink()):
            trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=3)
        resets = memory_sink.events("epochwise.cache_reset")
        assert [e["fields"]["epoch"] for e in resets] == [1, 2]
        assert all(e["fields"]["dropped"] == len(train) for e in resets)


class TestReportCommand:
    def test_report_cli_end_to_end(self, digits_small, tmp_path, capsys):
        train, _test = digits_small
        path = str(tmp_path / "run.jsonl")
        model = mnist_mlp(seed=0)
        trainer = build_trainer("vanilla", model, epsilon=0.25, lr=2e-3)
        with tel.capture(jsonl=path):
            trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=2)
        csv_path = str(tmp_path / "epochs.csv")
        assert main(["report", path, "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "Training time per epoch" in out
        assert "vanilla" in out
        lines = open(csv_path).read().splitlines()
        assert lines[0].startswith("trainer,epoch,total_s,data_s")
        assert len(lines) == 3  # header + 2 epochs

    def test_telemetry_flag_records_cli_run(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        code = main(
            ["audit", "--scale", "smoke", "--defense", "vanilla",
             "--telemetry", path]
        )
        assert code in (0, 1)  # masking verdict may flag at smoke scale
        capsys.readouterr()
        report = build_report(path)
        assert report.trainers() == ["vanilla"]
        assert len(report.epochs) == 4  # smoke-scale epochs
        assert main(["report", path, "--summary"]) == 0
        assert "Training time per epoch" in capsys.readouterr().out
