"""OpenMetrics exposition tests: mapping, sanitisation, determinism."""

from repro.telemetry.openmetrics import (
    CONTENT_TYPE,
    render_openmetrics,
    render_service_metrics,
)


def test_content_type_names_openmetrics():
    assert CONTENT_TYPE.startswith("application/openmetrics-text")


class TestRenderOpenmetrics:
    def test_counters_become_total_samples(self):
        text = render_openmetrics({"counters": {"serving.requests": 7.0}})
        assert "# TYPE repro_serving_requests counter" in text
        assert "repro_serving_requests_total 7" in text

    def test_gauges_render_with_extras(self):
        text = render_openmetrics(
            {"gauges": {"workspace.pool.bytes": 1024.0}},
            extra_gauges={"serving.batcher.requests": 3},
        )
        assert "repro_workspace_pool_bytes 1024" in text
        assert "repro_serving_batcher_requests 3" in text

    def test_histograms_become_summaries_with_quantiles(self):
        snapshot = {"histograms": {"serving.request_latency_ms": {
            "count": 4, "total": 10.0, "min": 1.0, "max": 4.0,
            "mean": 2.5, "p50": 2.0, "p90": 3.5, "p99": 3.9,
        }}}
        text = render_openmetrics(snapshot)
        assert "# TYPE repro_serving_request_latency_ms summary" in text
        assert 'repro_serving_request_latency_ms{quantile="0.5"} 2' in text
        assert 'repro_serving_request_latency_ms{quantile="0.99"} 3.9' in text
        assert "repro_serving_request_latency_ms_count 4" in text
        assert "repro_serving_request_latency_ms_sum 10" in text

    def test_names_are_sanitised_and_prefixed(self):
        text = render_openmetrics({"counters": {"a.b-c/d": 1.0}})
        assert "repro_a_b_c_d_total 1" in text

    def test_leading_digit_guarded(self):
        text = render_openmetrics({"gauges": {"2workers.speedup": 1.5}})
        assert "repro__2workers_speedup 1.5" in text

    def test_ends_with_eof_marker(self):
        assert render_openmetrics({}).endswith("# EOF\n")

    def test_deterministic_sorted_output(self):
        snapshot = {"counters": {"b": 1.0, "a": 2.0}}
        assert render_openmetrics(snapshot) == render_openmetrics(
            {"counters": {"a": 2.0, "b": 1.0}}
        )
        text = render_openmetrics(snapshot)
        assert text.index("repro_a_total") < text.index("repro_b_total")


class TestRenderServiceMetrics:
    def test_batcher_and_cache_stats_exposed_as_gauges(self):
        payload = {
            "metrics": {"counters": {"serving.requests": 2.0}},
            "batcher": {"requests": 2, "batches": 1, "mean_batch": 2.0},
            "cache": {"hits": 1, "misses": 1, "hit_rate": 0.5},
        }
        text = render_service_metrics(payload)
        assert "repro_serving_requests_total 2" in text
        assert "repro_serving_batcher_batches 1" in text
        assert "repro_serving_cache_hit_rate 0.5" in text

    def test_non_numeric_stats_are_skipped(self):
        payload = {"metrics": {}, "batcher": {"name": "classify", "n": 1}}
        text = render_service_metrics(payload)
        assert "classify" not in text
        assert "repro_serving_batcher_n 1" in text
