"""Sampling-profiler tests: sampling, collapsed output, span attribution."""

import time

import pytest

from repro import telemetry as tel
from repro.telemetry.profiler import DEFAULT_HZ, SamplingProfiler


def _spin(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


class TestSampling:
    def test_collects_samples_while_running(self):
        with SamplingProfiler(hz=500) as profiler:
            _spin(0.2)
        assert profiler.samples > 0
        assert profiler.stacks

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0)

    def test_default_rate_is_prime(self):
        assert DEFAULT_HZ == 29
        assert SamplingProfiler().hz == DEFAULT_HZ

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=500)
        assert profiler.start() is profiler.start()
        profiler.stop()
        profiler.stop()
        assert profiler._thread is None

    def test_samples_accumulate_across_restarts(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _spin(0.1)
        first = profiler.samples
        with profiler:
            _spin(0.1)
        assert profiler.samples > first


class TestCollapsedOutput:
    def test_collapsed_format_and_ordering(self):
        profiler = SamplingProfiler(hz=500)
        profiler.stacks = {("a:f", "b:g"): 5, ("a:f",): 2, ("c:h",): 5}
        lines = profiler.collapsed().splitlines()
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts, reverse=True)
        assert lines[0] == "a:f;b:g 5"  # ties break lexically
        assert lines[1] == "c:h 5"
        assert lines[2] == "a:f 2"

    def test_min_count_filters(self):
        profiler = SamplingProfiler(hz=500)
        profiler.stacks = {("a:f",): 5, ("b:g",): 1}
        assert "b:g" not in profiler.collapsed(min_count=2)

    def test_profile_catches_the_workload(self):
        with SamplingProfiler(hz=500) as profiler:
            _spin(0.3)
        assert "_spin" in profiler.collapsed()

    def test_save_writes_file(self, tmp_path):
        profiler = SamplingProfiler(hz=500)
        profiler.stacks = {("a:f",): 3}
        path = profiler.save(str(tmp_path / "out.collapsed"))
        assert open(path).read() == "a:f 3\n"

    def test_top_aggregates_innermost_frames(self):
        profiler = SamplingProfiler(hz=500)
        profiler.stacks = {("a:f", "z:leaf"): 3, ("b:g", "z:leaf"): 2,
                           ("c:h",): 1}
        assert profiler.top(limit=1) == [("z:leaf", 5)]


class TestSpanAttribution:
    def test_stacks_prefixed_with_enclosing_span(self, enabled):
        with SamplingProfiler(hz=500) as profiler:
            with tel.span("hot.region"):
                _spin(0.3)
        attributed = [
            stack for stack in profiler.stacks
            if stack[0] == "span:hot.region"
        ]
        assert attributed, (
            "no sample attributed to the enclosing telemetry span"
        )

    def test_no_span_prefix_while_telemetry_disabled(self):
        with SamplingProfiler(hz=500) as profiler:
            with tel.span("ignored"):  # null span: no registry entry
                _spin(0.2)
        assert not any(
            stack[0].startswith("span:") for stack in profiler.stacks
        )
