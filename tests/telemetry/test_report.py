"""Tests for the run-record report (the ``repro report`` renderer)."""

import pytest

from repro.telemetry import build_report, render_report
from repro.telemetry.report import PHASES, EpochRow


def epoch_record(trainer="proposed", epoch=0, duration=1.0, children=None,
                 **attrs):
    return {
        "type": "span",
        "name": "epoch",
        "ts": 0.0,
        "duration": duration,
        "self": 0.0,
        "children": children or {},
        "attrs": {"trainer": trainer, "epoch": epoch, **attrs},
    }


def child(count, total):
    return {"count": count, "total": total}


class TestEpochRow:
    def test_phase_extraction(self):
        row = EpochRow(epoch_record(duration=1.0, children={
            "data": child(10, 0.1),
            "forward": child(10, 0.4),
            "forward/attack": child(10, 0.25),
            "backward": child(10, 0.2),
            "optimizer": child(10, 0.15),
        }))
        assert row.phases["data"] == pytest.approx(0.1)
        # forward excludes the nested attack time...
        assert row.phases["forward"] == pytest.approx(0.15)
        # ...which is reported as the attack phase instead.
        assert row.phases["attack"] == pytest.approx(0.25)
        assert row.phases["backward"] == pytest.approx(0.2)
        assert row.phases["optimizer"] == pytest.approx(0.15)
        # other = duration - direct children (the nested path is not direct).
        assert row.other == pytest.approx(1.0 - 0.85)

    def test_top_level_attack_counted_once(self):
        row = EpochRow(epoch_record(duration=1.0, children={
            "attack": child(5, 0.3),
        }))
        assert row.phases["attack"] == pytest.approx(0.3)
        assert row.phases["forward"] == 0.0

    def test_missing_children_are_zero(self):
        row = EpochRow(epoch_record())
        assert all(row.phases[p] == 0.0 for p in PHASES)
        assert row.other == pytest.approx(1.0)


class TestRunReport:
    def make_records(self):
        return [
            epoch_record("vanilla", 0, 1.0),
            epoch_record("vanilla", 1, 3.0),
            epoch_record("proposed", 0, 2.0),
            {"type": "event", "name": "early_stop.triggered", "ts": 0.0,
             "fields": {"epoch": 1}},
            {"type": "metrics", "ts": 0.0,
             "counters": {"attack.early_stop.retired": 64.0},
             "gauges": {"workspace.pool.hits": 30.0,
                        "workspace.pool.misses": 10.0,
                        "data.shard_cache.hits": 9.0,
                        "data.shard_cache.misses": 1.0,
                        "epochwise.cache_bytes": 4096.0},
             "histograms": {"attack.early_stop.retired_per_step": {
                 "count": 4, "total": 64.0, "min": 8.0, "max": 24.0,
                 "mean": 16.0}}},
        ]

    def test_trainers_and_time_per_epoch(self):
        report = build_report(self.make_records())
        assert report.trainers() == ["vanilla", "proposed"]
        assert report.time_per_epoch("vanilla") == pytest.approx(2.0)
        assert report.time_per_epoch("proposed") == pytest.approx(2.0)
        assert report.time_per_epoch("missing") == 0.0

    def test_render_contains_all_sections(self):
        text = build_report(self.make_records()).render()
        assert "Training time per epoch" in text
        assert "Per-epoch phase breakdown" in text
        assert "attack.early_stop.retired = 64" in text
        assert "workspace pool hit-rate: 75.0%" in text
        assert "shard cache hit-rate: 90.0%" in text
        assert "epochwise.cache_bytes = 4096" in text
        assert "early_stop.triggered epoch=1" in text
        assert "attack.early_stop.retired_per_step" in text

    def test_summary_only_render(self):
        text = build_report(self.make_records()).render(per_epoch=False)
        assert "Training time per epoch" in text
        assert "Per-epoch phase breakdown" not in text

    def test_empty_record_list(self):
        text = build_report([]).render()
        assert "no epoch spans" in text

    def test_render_report_from_jsonl_path(self, tmp_path):
        import json

        path = tmp_path / "run.jsonl"
        path.write_text(
            "\n".join(json.dumps(r) for r in self.make_records()) + "\n"
        )
        assert "Training time per epoch" in render_report(str(path))


class TestHealthBlock:
    def metrics_record(self, counters=None, gauges=None):
        return {"type": "metrics", "ts": 0.0,
                "counters": counters or {}, "gauges": gauges or {}}

    def test_silent_when_nothing_recorded(self):
        report = build_report([epoch_record(), self.metrics_record()])
        assert report.render_health() == ""
        assert "health:" not in report.render()

    def test_worker_restarts_surface(self):
        report = build_report([self.metrics_record(
            counters={"parallel.worker_restarts": 2.0}
        )])
        text = report.render_health()
        assert "health:" in text
        assert "worker restarts: 2" in text

    def test_serving_pressure_line_aggregates_batchers(self):
        report = build_report([self.metrics_record(counters={
            "serving.requests": 10.0,
            "serving.classify.shed": 3.0,
            "serving.audit.shed": 1.0,
            "serving.classify.timeouts": 2.0,
        })])
        text = report.render_health()
        assert "serving: 10 request(s), 4 shed, 2 timed out" in text

    def test_shard_cache_hit_rate(self):
        report = build_report([self.metrics_record(gauges={
            "data.shard_cache.hits": 9.0,
            "data.shard_cache.misses": 1.0,
        })])
        assert "shard cache: 90.0% hit-rate" in report.render_health()

    def test_health_block_in_full_render(self):
        report = build_report([
            epoch_record(),
            self.metrics_record(
                counters={"parallel.worker_restarts": 1.0}),
        ])
        assert "health:" in report.render()
