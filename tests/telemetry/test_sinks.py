"""Tests for telemetry sinks: in-memory, JSONL round-trip, console, summary."""

import io
import json

import pytest

from repro import telemetry as tel
from repro.telemetry import (
    ConsoleEvents,
    InMemorySink,
    JsonlSink,
    SummarySink,
    load_records,
)


class TestInMemorySink:
    def test_filters_by_type_and_name(self):
        sink = InMemorySink()
        sink.emit({"type": "span", "name": "epoch"})
        sink.emit({"type": "span", "name": "eval.cell"})
        sink.emit({"type": "event", "name": "checkpoint.saved"})
        sink.emit({"type": "metrics", "counters": {}})
        assert len(sink.spans()) == 2
        assert len(sink.spans("epoch")) == 1
        assert len(sink.events()) == 1
        assert sink.metrics() == {"type": "metrics", "counters": {}}

    def test_clear(self):
        sink = InMemorySink()
        sink.emit({"type": "event", "name": "x"})
        sink.clear()
        assert sink.records == []


class TestJsonlRoundTrip:
    def test_records_survive_write_and_load(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with tel.capture(jsonl=path):
            with tel.span("epoch", emit=True, trainer="vanilla", epoch=0) as s:
                with tel.span("forward"):
                    pass
                s.note(loss=0.5)
            tel.counter("data.batches", 3)
            tel.event("checkpoint.saved", epoch=0, path="best.npz")
        records = load_records(path)
        kinds = [r["type"] for r in records]
        assert kinds.count("span") == 1
        assert kinds.count("event") == 1
        assert kinds[-1] == "metrics"  # snapshot is appended on scope exit
        span = next(r for r in records if r["type"] == "span")
        assert span["name"] == "epoch"
        assert span["attrs"] == {"trainer": "vanilla", "epoch": 0, "loss": 0.5}
        assert span["children"]["forward"]["count"] == 1
        metrics = records[-1]
        assert metrics["counters"]["data.batches"] == 3.0

    def test_stream_target_is_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.emit({"type": "event", "name": "x", "fields": {}})
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue())["name"] == "x"

    def test_non_serialisable_values_fall_back_to_str(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        sink.emit({"type": "event", "name": "x", "fields": {"obj": object()}})
        sink.close()
        [record] = load_records(path)
        assert record["fields"]["obj"].startswith("<object object")

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"type": "event", "name": "a"}\n\n')
        assert len(load_records(str(path))) == 1

    def test_truncated_final_line_is_dropped(self, tmp_path):
        """A SIGKILLed writer leaves a torn last line; loading tolerates it."""
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"type": "span", "name": "a"}\n'
            '{"type": "span", "name": "b"}\n'
            '{"type": "span", "na'  # killed mid-write
        )
        records = load_records(str(path))
        assert [r["name"] for r in records] == ["a", "b"]

    def test_corrupt_interior_line_still_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            '{"type": "span", "name": "a"}\n'
            "not json at all\n"
            '{"type": "span", "name": "b"}\n'
        )
        with pytest.raises(json.JSONDecodeError):
            load_records(str(path))

    def test_every_record_is_flushed_immediately(self, tmp_path):
        """Crash-safety: records must hit the file before close()."""
        path = str(tmp_path / "run.jsonl")
        sink = JsonlSink(path)
        try:
            sink.emit({"type": "event", "name": "x", "fields": {}})
            assert len(load_records(path)) == 1
        finally:
            sink.close()


class TestConsoleEvents:
    def test_prints_selected_events(self):
        stream = io.StringIO()
        sink = ConsoleEvents(("checkpoint.saved",), stream=stream)
        sink.emit({
            "type": "event", "name": "checkpoint.saved",
            "fields": {"epoch": 2, "kind": "best"},
        })
        sink.emit({"type": "event", "name": "ignored.event", "fields": {}})
        sink.emit({"type": "span", "name": "epoch"})
        output = stream.getvalue()
        assert output == "[telemetry] checkpoint.saved epoch=2 kind=best\n"

    def test_no_filter_prints_all_events(self):
        stream = io.StringIO()
        sink = ConsoleEvents(stream=stream)
        sink.emit({"type": "event", "name": "anything", "fields": {}})
        assert "anything" in stream.getvalue()


class TestSummarySink:
    def test_aggregates_spans_and_counters(self):
        stream = io.StringIO()
        sink = SummarySink(stream=stream)
        for duration in (1.0, 3.0):
            sink.emit({"type": "span", "name": "epoch", "duration": duration})
        sink.emit({
            "type": "metrics", "counters": {"data.batches": 12.0},
            "gauges": {}, "histograms": {},
        })
        sink.close()
        output = stream.getvalue()
        assert "epoch" in output
        assert "4.0000" in output  # total
        assert "2.0000" in output  # mean
        assert "data.batches = 12" in output

    def test_csv_output(self, tmp_path):
        path = str(tmp_path / "summary.csv")
        sink = SummarySink(csv_path=path)
        sink.emit({"type": "span", "name": "epoch", "duration": 2.0})
        sink.close()
        lines = open(path).read().splitlines()
        assert lines[0] == "span,count,total_s,mean_s"
        assert lines[1] == "epoch,1,2.0000,2.0000"
