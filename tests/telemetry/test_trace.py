"""Distributed-trace tests: identity, header codec, spools, collector."""

import json
import os

import pytest

from repro import telemetry as tel
from repro.telemetry import trace as teltrace
from repro.telemetry.trace import (
    TraceCollector,
    ensure_spool,
    format_trace_header,
    parse_trace_header,
    render_trace,
    set_spool_dir,
    shutdown_spool,
)


class TestHeaderCodec:
    def test_round_trip(self):
        ctx = tel.TraceContext("00ff00ff00ff00ff", "0123456789abcdef")
        assert parse_trace_header(format_trace_header(ctx)) == ctx

    @pytest.mark.parametrize("value", [
        None, "", "justone", "a-b-c", "nothex-0123456789abcdef",
        "0123456789abcdef-nothex", "-0123456789abcdef",
    ])
    def test_malformed_values_yield_none(self, value):
        assert parse_trace_header(value) is None

    def test_surrounding_whitespace_tolerated(self):
        ctx = parse_trace_header("  aa-bb \n")
        assert ctx == tel.TraceContext("aa", "bb")


class TestTraceIdentity:
    def test_root_span_mints_ids(self, enabled, memory_sink):
        with tel.span("root"):
            pass
        (record,) = memory_sink.records
        assert len(record["trace_id"]) == 16
        assert len(record["span_id"]) == 16
        assert record["parent_id"] is None
        assert record["pid"] == os.getpid()

    def test_family_shares_trace_id_and_parents_correctly(
        self, enabled, memory_sink
    ):
        with tel.span("root"):
            with tel.span("child", emit=True):
                pass
        child, root = memory_sink.records
        assert child["trace_id"] == root["trace_id"]
        assert child["parent_id"] == root["span_id"]

    def test_non_emitting_ancestor_is_skipped_in_parent_chain(
        self, enabled, memory_sink
    ):
        # The middle span never emits a record, so parenting on it would
        # dangle; the grandchild must parent on the root instead.
        with tel.span("root"):
            with tel.span("middle"):
                with tel.span("leaf", emit=True):
                    pass
        leaf, root = memory_sink.records
        assert leaf["name"] == "leaf"
        assert leaf["parent_id"] == root["span_id"]

    def test_remote_context_adopted_by_new_roots(self, enabled, memory_sink):
        remote = tel.TraceContext("feedfacefeedface", "cafebabecafebabe")
        with tel.trace_context(remote):
            with tel.span("work"):
                pass
        (record,) = memory_sink.records
        assert record["trace_id"] == remote.trace_id
        assert record["parent_id"] == remote.span_id

    def test_trace_context_none_is_a_noop(self, enabled, memory_sink):
        with tel.trace_context(None):
            with tel.span("work"):
                pass
        (record,) = memory_sink.records
        assert record["parent_id"] is None

    def test_current_context_prefers_nearest_emitting_span(self, enabled):
        assert tel.current_context() is None
        with tel.span("root") as root:
            with tel.span("middle"):  # emit=None nested: never emits
                ctx = tel.current_context()
                assert ctx.span_id == root.span_id
        assert tel.current_context() is None

    def test_current_context_falls_back_to_remote(self, enabled):
        remote = tel.TraceContext("aa" * 8, "bb" * 8)
        with tel.trace_context(remote):
            assert tel.current_context() == remote

    def test_disabled_mode_has_no_context(self):
        with tel.span("ignored"):
            assert tel.current_context() is None


class TestSpool:
    def test_ensure_spool_without_directory_is_noop(self):
        assert teltrace.spool_dir() is None
        assert ensure_spool() is None

    def test_ensure_spool_idempotent_per_directory(self, tmp_path):
        spool = str(tmp_path / "spool")
        try:
            first = ensure_spool(spool)
            assert first is ensure_spool(spool)
            assert os.path.basename(first.path).startswith(
                f"spool-{os.getpid()}-"
            )
        finally:
            shutdown_spool()

    def test_new_directory_retires_old_sink(self, tmp_path):
        try:
            first = ensure_spool(str(tmp_path / "a"))
            second = ensure_spool(str(tmp_path / "b"))
            assert first is not second
            from repro.telemetry import core

            assert first not in core._sinks
            assert second in core._sinks
        finally:
            shutdown_spool()

    def test_capture_arms_spool_dir(self, tmp_path):
        run = str(tmp_path / "run.jsonl")
        with tel.capture(jsonl=run):
            assert teltrace.spool_dir() == f"{run}.spool"
        assert teltrace.spool_dir() is None
        # Nothing emitted from another process: directory never created.
        assert not os.path.exists(f"{run}.spool")

    def test_fork_child_writes_its_own_spool_file(self, tmp_path, enabled):
        """Trace identity survives a raw os.fork into the child's spool."""
        spool = str(tmp_path / "spool")
        ctx = tel.TraceContext("11" * 8, "22" * 8)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            status = 1
            try:
                os.close(read_fd)
                tel.set_enabled(True)
                ensure_spool(spool)
                with tel.trace_context(ctx):
                    with tel.span("child.work"):
                        pass
                status = 0
            finally:
                os.write(write_fd, b"x")
                os._exit(status)
        os.close(write_fd)
        try:
            assert os.read(read_fd, 1) == b"x"
        finally:
            os.close(read_fd)
        _, exit_status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(exit_status) == 0
        (path,) = [
            os.path.join(spool, name) for name in os.listdir(spool)
        ]
        assert f"spool-{pid}-" in path
        (record,) = [
            json.loads(line) for line in open(path) if line.strip()
        ]
        assert record["name"] == "child.work"
        assert record["trace_id"] == ctx.trace_id
        assert record["parent_id"] == ctx.span_id
        assert record["pid"] == pid


def _span_record(name, trace_id, span_id, parent_id, ts, duration,
                 pid=1234, **attrs):
    return {
        "type": "span", "name": name, "trace_id": trace_id,
        "span_id": span_id, "parent_id": parent_id, "ts": ts,
        "duration": duration, "pid": pid, "thread": "MainThread",
        "attrs": attrs, "children": {},
    }


class TestCollector:
    def test_only_traced_span_records_participate(self):
        collector = TraceCollector([
            {"type": "metrics", "counters": {}},
            {"type": "span", "name": "legacy"},  # pre-trace record
            _span_record("a", "t1", "s1", None, 0.0, 1.0),
        ])
        assert len(collector.spans) == 1

    def test_traces_group_and_order_by_start(self):
        collector = TraceCollector([
            _span_record("late", "t1", "s2", None, 5.0, 1.0),
            _span_record("early", "t1", "s1", None, 1.0, 1.0),
            _span_record("other", "t2", "s3", None, 0.0, 1.0),
        ])
        groups = collector.traces()
        assert set(groups) == {"t1", "t2"}
        assert [s["name"] for s in groups["t1"]] == ["early", "late"]
        assert collector.trace_ids() == ["t2", "t1"]

    def test_render_tree_indents_children_and_counts_processes(self):
        collector = TraceCollector([
            _span_record("epoch", "t1", "root", None, 0.0, 2.0, pid=100),
            _span_record("shard", "t1", "w1", "root", 0.5, 1.0,
                         pid=200, worker=0),
            _span_record("shard", "t1", "w2", "root", 0.5, 1.0,
                         pid=300, worker=1),
        ])
        text = collector.render_one("t1")
        assert "3 span(s), 3 process(es)" in text
        lines = text.splitlines()
        assert "epoch" in lines[1]
        assert "    shard [worker=0]" in lines[2]  # indented child
        assert "|" in lines[1] and "#" in lines[1]  # waterfall bar

    def test_orphan_parent_surfaces_at_top_level(self):
        collector = TraceCollector([
            _span_record("child", "t1", "s1", "not-collected", 0.0, 1.0),
        ])
        text = collector.render_one("t1")
        assert "child" in text

    def test_render_matches_id_prefix(self):
        collector = TraceCollector([
            _span_record("a", "abcd1234", "s1", None, 0.0, 1.0),
        ])
        assert "trace abcd1234" in collector.render("abc")
        assert "no trace matching" in collector.render("ffff")

    def test_render_without_spans_explains(self):
        assert "no traced spans" in TraceCollector().render()

    def test_from_run_merges_spool_files(self, tmp_path):
        run = tmp_path / "run.jsonl"
        spool = tmp_path / "run.jsonl.spool"
        spool.mkdir()
        run.write_text(json.dumps(
            _span_record("epoch", "t1", "root", None, 0.0, 2.0, pid=1)
        ) + "\n")
        (spool / "spool-2-aa.jsonl").write_text(json.dumps(
            _span_record("shard", "t1", "w1", "root", 0.5, 1.0, pid=2)
        ) + "\n")
        collector = TraceCollector.from_run(str(run))
        assert len(collector.spans) == 2
        assert "2 process(es)" in collector.render_one("t1")

    def test_render_trace_accepts_record_lists(self):
        records = [_span_record("a", "t1", "s1", None, 0.0, 1.0)]
        assert "trace t1" in render_trace(records)


class TestEndToEndCapture:
    def test_capture_produces_one_merged_trace(self, tmp_path):
        """A traced region with nested emitting spans is one trace."""
        run = str(tmp_path / "run.jsonl")
        with tel.capture(jsonl=run):
            with tel.span("epoch", emit=True, trainer="proposed"):
                with tel.span("forward", emit=True):
                    pass
        collector = TraceCollector.from_run(run)
        assert len(collector.trace_ids()) == 1
        text = render_trace(run)
        assert "epoch" in text and "forward" in text
