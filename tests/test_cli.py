"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.dataset == "digits"
        assert args.scale == "medium"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resnet"])

    def test_ablate_knob_choices(self):
        args = build_parser().parse_args(["ablate", "--knob", "reset_interval"])
        assert args.knob == "reset_interval"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "--knob", "nope"])

    def test_workers_flag(self):
        args = build_parser().parse_args(["table1", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["table1"])
        assert args.workers is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--workers", "two"])

    def test_workers_threads_into_config(self):
        from repro.cli import _config_for

        args = build_parser().parse_args(["table1", "--workers", "2"])
        assert _config_for(args).workers == 2
        args = build_parser().parse_args(["table1"])
        assert _config_for(args).workers is None


class TestSmokeRuns:
    """End-to-end CLI runs at smoke scale (slow-ish but full-path)."""

    def test_table1_smoke(self, capsys, tmp_path):
        save = str(tmp_path / "t1.json")
        code = main(
            ["table1", "--scale", "smoke", "--dataset", "digits",
             "--save", save]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        with open(save) as handle:
            payload = json.load(handle)
        assert payload["dataset"] == "digits"

    def test_figure1_smoke(self, capsys):
        code = main(["figure1", "--scale", "smoke"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure2_smoke(self, capsys):
        code = main(["figure2", "--scale", "smoke"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_ablate_smoke(self, capsys):
        code = main(["ablate", "--scale", "smoke", "--knob", "step_size"])
        assert code == 0
        assert "step_size" in capsys.readouterr().out

    def test_audit_smoke(self, capsys):
        code = main(
            ["audit", "--scale", "smoke", "--defense", "fgsm_adv"]
        )
        out = capsys.readouterr().out
        assert "robust accuracy" in out
        assert "gradient-masking diagnostics" in out
        assert code in (0, 1)  # masking verdict may flag at smoke scale
