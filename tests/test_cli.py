"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.dataset == "digits"
        assert args.scale == "medium"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resnet"])

    def test_ablate_knob_choices(self):
        args = build_parser().parse_args(["ablate", "--knob", "reset_interval"])
        assert args.knob == "reset_interval"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate", "--knob", "nope"])

    def test_workers_flag(self):
        args = build_parser().parse_args(["table1", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["table1"])
        assert args.workers is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--workers", "two"])

    def test_workers_threads_into_config(self):
        from repro.cli import _config_for

        args = build_parser().parse_args(["table1", "--workers", "2"])
        assert _config_for(args).workers == 2
        args = build_parser().parse_args(["table1"])
        assert _config_for(args).workers is None


class TestSmokeRuns:
    """End-to-end CLI runs at smoke scale (slow-ish but full-path)."""

    def test_table1_smoke(self, capsys, tmp_path):
        save = str(tmp_path / "t1.json")
        code = main(
            ["table1", "--scale", "smoke", "--dataset", "digits",
             "--save", save]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        with open(save) as handle:
            payload = json.load(handle)
        assert payload["dataset"] == "digits"

    def test_figure1_smoke(self, capsys):
        code = main(["figure1", "--scale", "smoke"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure2_smoke(self, capsys):
        code = main(["figure2", "--scale", "smoke"])
        assert code == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_ablate_smoke(self, capsys):
        code = main(["ablate", "--scale", "smoke", "--knob", "step_size"])
        assert code == 0
        assert "step_size" in capsys.readouterr().out

    def test_audit_smoke(self, capsys):
        code = main(
            ["audit", "--scale", "smoke", "--defense", "fgsm_adv"]
        )
        out = capsys.readouterr().out
        assert "robust accuracy" in out
        assert "gradient-masking diagnostics" in out
        assert code in (0, 1)  # masking verdict may flag at smoke scale


class TestObservabilityCommands:
    def _run_record(self, tmp_path):
        """A tiny traced run record with one spooled worker span."""
        import os

        run = tmp_path / "run.jsonl"
        spool = tmp_path / "run.jsonl.spool"
        spool.mkdir()
        epoch = {
            "type": "span", "name": "epoch", "ts": 0.0, "duration": 2.0,
            "self": 2.0, "trace_id": "t" * 16, "span_id": "a" * 16,
            "parent_id": None, "pid": 1, "thread": "MainThread",
            "children": {}, "attrs": {"trainer": "proposed", "epoch": 0},
        }
        shard = dict(
            epoch, name="shard", span_id="b" * 16, parent_id="a" * 16,
            ts=0.5, duration=1.0, pid=2, attrs={"worker": 0},
        )
        run.write_text(json.dumps(epoch) + "\n")
        (spool / "spool-2-ff.jsonl").write_text(json.dumps(shard) + "\n")
        return str(run)

    def test_report_trace_renders_merged_tree(self, capsys, tmp_path):
        run = self._run_record(tmp_path)
        assert main(["report", run, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "2 span(s), 2 process(es)" in out
        assert "shard" in out

    def test_report_trace_with_id_prefix(self, capsys, tmp_path):
        run = self._run_record(tmp_path)
        assert main(["report", run, "--trace", "tttt"]) == 0
        assert "trace " + "t" * 16 in capsys.readouterr().out

    def test_report_still_renders_timing_table(self, capsys, tmp_path):
        run = self._run_record(tmp_path)
        assert main(["report", run]) == 0
        assert "Training time per epoch" in capsys.readouterr().out

    def test_profile_subcommand_wraps_table1(self, capsys, tmp_path):
        out_path = str(tmp_path / "prof.collapsed")
        code = main([
            "profile", "--out", out_path, "--hz", "199",
            "table1", "--scale", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "sampling profile:" in out
        with open(out_path) as handle:
            assert handle.read().strip()  # non-empty collapsed stacks

    def test_profile_without_subcommand_errors(self, capsys):
        assert main(["profile"]) == 2
        assert "usage:" in capsys.readouterr().out

    def test_profile_flag_on_subcommand(self, capsys, tmp_path):
        out_path = str(tmp_path / "prof.collapsed")
        code = main([
            "table1", "--scale", "smoke", "--profile", out_path,
        ])
        assert code == 0
        assert "sampling profile:" in capsys.readouterr().out

    def test_bench_diff_on_committed_baselines(self, capsys):
        assert main(["bench", "diff"]) == 0
        out = capsys.readouterr().out
        assert "ok: no regressions" in out

    def test_bench_diff_flags_injected_regression(self, capsys, tmp_path):
        from repro.telemetry.bench import BenchRecord

        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        BenchRecord("serving").add(
            "rps", 5000.0, unit="examples/s", direction="higher"
        ).save(str(baseline))
        BenchRecord("serving").add(
            "rps", 4000.0, unit="examples/s", direction="higher"
        ).save(str(current))
        code = main([
            "bench", "diff", str(current), "--baseline", str(baseline),
        ])
        assert code == 1
        assert "FAIL: 1 regression(s)" in capsys.readouterr().out

    def test_bench_diff_without_baselines_errors(self, capsys, tmp_path):
        assert main(
            ["bench", "diff", "--baseline", str(tmp_path / "void")]
        ) == 2
        assert "no *.bench.json" in capsys.readouterr().out
