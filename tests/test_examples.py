"""Sanity checks for the example scripts.

Each example must at least compile; the cheapest one also runs end-to-end
in a subprocess to guard the public-API usage they demonstrate.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(EXAMPLE_FILES) >= 3


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.name for p in EXAMPLE_FILES]
)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_attack_gallery_runs_end_to_end(tmp_path):
    """The fastest example: trains a few epochs and runs every attack."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "attack_gallery.py"),
         "--epochs", "3"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert "attack comparison" in result.stdout
    assert "BIM" in result.stdout
