"""Cross-module integration tests.

These pin end-to-end properties that no single-module test can: full-run
determinism, checkpoint/resume equivalence, and consistency between the
attack library and the evaluation protocols.
"""

import numpy as np
import pytest

from repro.attacks import BIM, FGSM
from repro.data import DataLoader, load_dataset
from repro.defenses import Trainer, build_trainer
from repro.eval import RobustnessEvaluator, robust_accuracy
from repro.models import mnist_mlp
from repro.optim import Adam
from repro.utils import load_state_dict, save_state_dict


class TestDeterminism:
    def _train_once(self, defense="fgsm_adv", epochs=4):
        train, _ = load_dataset(
            "digits", train_per_class=15, test_per_class=5, seed=0
        )
        model = mnist_mlp(seed=0)
        trainer = build_trainer(
            defense, model, epsilon=0.2, lr=2e-3, warmup_epochs=1
        )
        trainer.fit(DataLoader(train, batch_size=64, rng=0), epochs=epochs)
        return model

    def test_identical_runs_identical_weights(self):
        """Same seeds everywhere -> bit-identical parameters."""
        m1 = self._train_once()
        m2 = self._train_once()
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            assert np.array_equal(p1.data, p2.data)

    def test_proposed_method_deterministic(self):
        m1 = self._train_once(defense="proposed")
        m2 = self._train_once(defense="proposed")
        for p1, p2 in zip(m1.parameters(), m2.parameters()):
            assert np.array_equal(p1.data, p2.data)

    def test_different_seed_differs(self):
        train, _ = load_dataset(
            "digits", train_per_class=15, test_per_class=5, seed=0
        )
        weights = []
        for seed in (0, 1):
            model = mnist_mlp(seed=seed)
            Trainer(model, Adam(model.parameters(), lr=2e-3)).fit(
                DataLoader(train, batch_size=64, rng=seed), epochs=2
            )
            weights.append(model.head.weight.data.copy())
        assert not np.array_equal(weights[0], weights[1])


class TestCheckpointResume:
    def test_save_load_then_attack_identically(self, tmp_path, digits_small):
        """A reloaded model must be attack-equivalent, not just
        prediction-equivalent (gradients must match too)."""
        train, test = digits_small
        x, y = test.arrays()
        model = mnist_mlp(seed=0)
        Trainer(model, Adam(model.parameters(), lr=2e-3)).fit(
            DataLoader(train, batch_size=64, rng=0), epochs=4
        )
        path = str(tmp_path / "model.npz")
        save_state_dict(path, model.state_dict())

        clone = mnist_mlp(seed=123)  # different init, then overwritten
        clone.load_state_dict(load_state_dict(path))
        clone.eval()
        model.eval()

        adv_a = BIM(model, 0.2, num_steps=3).generate(x[:16], y[:16])
        adv_b = BIM(clone, 0.2, num_steps=3).generate(x[:16], y[:16])
        assert np.array_equal(adv_a, adv_b)

    def test_resume_training_continues(self, tmp_path, digits_small):
        train, _ = digits_small
        loader = DataLoader(train, batch_size=64, rng=0)
        model = mnist_mlp(seed=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        h1 = trainer.fit(loader, epochs=3)
        h2 = trainer.fit(loader, epochs=3)  # resume on same trainer
        assert trainer.epoch == 6
        assert np.mean(h2.losses) < np.mean(h1.losses)


class TestAttackEvalConsistency:
    def test_robust_accuracy_matches_manual_loop(
        self, trained_mlp, digits_small
    ):
        _train, test = digits_small
        x, y = test.arrays()
        attack = FGSM(trained_mlp, 0.2)
        via_eval = robust_accuracy(trained_mlp, attack, x, y)
        manual = (trained_mlp.predict(attack.generate(x, y)) == y).mean()
        assert via_eval == pytest.approx(manual)

    def test_paper_suite_consistent_with_components(
        self, trained_mlp, digits_small
    ):
        _train, test = digits_small
        x, y = test.arrays()
        suite = RobustnessEvaluator.paper_suite(0.2)
        results = suite.evaluate(trained_mlp, x, y)
        direct = robust_accuracy(
            trained_mlp, BIM(trained_mlp, 0.2, num_steps=10), x, y
        )
        assert results["bim10"] == pytest.approx(direct)


class TestCrossModelTransfers:
    def test_adversarial_examples_transfer_between_seeds(self, digits_small):
        """Classic phenomenon: examples crafted on one model hurt another
        model trained on the same data — the premise behind black-box
        attacks and the reason the paper's white-box evaluation is the
        harder setting."""
        train, test = digits_small
        x, y = test.arrays()
        loader = DataLoader(train, batch_size=64, rng=0)
        models = []
        for seed in (0, 7):
            model = mnist_mlp(seed=seed)
            Trainer(model, Adam(model.parameters(), lr=2e-3)).fit(
                loader, epochs=8
            )
            models.append(model)
        source, victim = models
        x_adv = BIM(source, 0.25, num_steps=10).generate(x, y)
        clean_acc = (victim.predict(x) == y).mean()
        transfer_acc = (victim.predict(x_adv) == y).mean()
        assert transfer_acc < clean_acc - 0.2
