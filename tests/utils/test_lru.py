"""Unit tests for the shared bounded LRU cache."""

import pytest

from repro.utils import LRUCache


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_get_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.get("nope") is None
        assert cache.get("nope", default=7) == 7

    def test_put_updates_existing_value(self):
        cache = LRUCache(2)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_pop_and_clear(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.pop("a") == 1
        assert cache.pop("a", default="gone") == "gone"
        cache.clear()
        assert len(cache) == 0


class TestEviction:
    def test_lru_order_evicts_oldest(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert cache.peek("b") == 2
        assert cache.peek("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")      # "b" is now least recently used
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_peek_does_not_refresh_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")     # "a" stays least recently used
        cache.put("c", 3)
        assert "a" not in cache

    def test_eviction_callback_fires_with_key_and_value(self):
        evicted = []
        cache = LRUCache(1, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1)
        cache.put("b", 2)
        assert evicted == [("a", 1)]

    def test_pop_and_clear_skip_the_callback(self):
        evicted = []
        cache = LRUCache(2, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1)
        cache.put("b", 2)
        cache.pop("a")
        cache.clear()
        assert evicted == []

    def test_values_and_items_are_lru_ordered(self):
        cache = LRUCache(3)
        for key, value in (("a", 1), ("b", 2), ("c", 3)):
            cache.put(key, value)
        cache.get("a")
        assert list(cache.values()) == [2, 3, 1]
        assert list(cache.items()) == [("b", 2), ("c", 3), ("a", 1)]


class TestCounters:
    def test_hits_and_misses_counted(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("zzz")
        assert cache.stats == {
            "hits": 2, "misses": 1, "size": 1, "capacity": 2,
        }

    def test_peek_and_contains_do_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.peek("a")
        _ = "a" in cache
        assert cache.hits == 0
        assert cache.misses == 0

    def test_reset_stats_keeps_entries(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.reset_stats()
        assert cache.stats == {
            "hits": 0, "misses": 0, "size": 1, "capacity": 2,
        }
        assert cache.peek("a") == 1
