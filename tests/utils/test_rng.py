"""Tests for RNG helpers."""

import numpy as np
import pytest

from repro.utils import ensure_rng, make_rng, spawn_rngs


class TestEnsureRng:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_to_generator(self):
        assert isinstance(ensure_rng(42), np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()


class TestSpawn:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        c1 = spawn_rngs(3, 2)
        c2 = spawn_rngs(3, 2)
        assert c1[0].random() == c2[0].random()
        assert c1[1].random() == c2[1].random()

    def test_spawning_advances_parent_consistently(self):
        parent1 = make_rng(1)
        parent2 = make_rng(1)
        spawn_rngs(parent1, 3)
        spawn_rngs(parent2, 3)
        assert parent1.random() == parent2.random()
