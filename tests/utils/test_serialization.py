"""Tests for serialization helpers."""

import numpy as np
import pytest

from repro.models import mnist_mlp
from repro.utils import (
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
    to_jsonable,
)


class TestStateDictIO:
    def test_roundtrip(self, tmp_path):
        state = {"a": np.arange(4.0), "b.c": np.ones((2, 2))}
        path = str(tmp_path / "model.npz")
        save_state_dict(path, state)
        loaded = load_state_dict(path)
        assert set(loaded) == {"a", "b.c"}
        assert np.array_equal(loaded["a"], state["a"])

    def test_extension_added_on_load(self, tmp_path):
        path = str(tmp_path / "model")
        save_state_dict(path + ".npz", {"x": np.zeros(2)})
        assert "x" in load_state_dict(path)

    def test_model_roundtrip(self, tmp_path):
        model1 = mnist_mlp(seed=1)
        path = str(tmp_path / "mlp.npz")
        save_state_dict(path, model1.state_dict())
        model2 = mnist_mlp(seed=2)
        model2.load_state_dict(load_state_dict(path))
        for (n1, p1), (n2, p2) in zip(
            model1.named_parameters(), model2.named_parameters()
        ):
            assert n1 == n2
            assert np.array_equal(p1.data, p2.data)

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "m.npz")
        save_state_dict(path, {"x": np.zeros(1)})
        assert "x" in load_state_dict(path)


class TestJson:
    def test_roundtrip(self, tmp_path):
        payload = {"accuracy": np.float64(0.93), "curve": np.arange(3.0)}
        path = str(tmp_path / "out.json")
        save_json(path, payload)
        loaded = load_json(path)
        assert loaded["accuracy"] == pytest.approx(0.93)
        assert loaded["curve"] == [0.0, 1.0, 2.0]

    def test_to_jsonable_nested(self):
        data = {"a": [np.int64(1), {"b": np.zeros(2)}], "c": (np.float32(0.5),)}
        out = to_jsonable(data)
        assert out == {"a": [1, {"b": [0.0, 0.0]}], "c": [0.5]}
