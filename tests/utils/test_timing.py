"""Tests for timing utilities."""

import time

import pytest

from repro.telemetry import Stopwatch
from repro.utils import EpochTimer, Timer


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed >= 0.005
        assert t.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_total_accumulates_across_segments(self):
        t = Timer()
        segments = []
        for _ in range(3):
            t.start()
            time.sleep(0.003)
            segments.append(t.stop())
        assert t.elapsed == segments[-1]
        assert t.total == pytest.approx(sum(segments))
        assert t.total >= 0.009

    def test_context_manager_accumulates(self):
        t = Timer()
        for _ in range(2):
            with t:
                time.sleep(0.003)
        assert t.total >= 0.006
        assert t.elapsed <= t.total

    def test_reset_clears_total(self):
        t = Timer()
        with t:
            time.sleep(0.002)
        assert t.total > 0.0
        t.reset()
        assert t.total == 0.0
        assert t.elapsed == 0.0

    def test_is_telemetry_stopwatch(self):
        """Timer is the telemetry Stopwatch under a compatibility name."""
        assert issubclass(Timer, Stopwatch)

    def test_unbalanced_exit_raises_like_stop(self):
        """``__exit__`` on a stopped timer fails exactly like ``stop()``.

        Regression test: ``__exit__`` used to swallow the unbalanced-exit
        case that ``stop()`` reports, so ``with`` blocks and manual
        start/stop disagreed about misuse.
        """
        t = Timer()
        with pytest.raises(RuntimeError, match="before start"):
            with t:
                t.stop()  # consumes the running segment mid-block

    def test_exit_does_not_mask_inflight_exception(self):
        t = Timer()
        with pytest.raises(ValueError, match="original"):
            with t:
                t.stop()
                raise ValueError("original")

    def test_exit_matches_stop_when_balanced(self):
        by_exit = Timer()
        by_stop = Timer()
        with by_exit:
            time.sleep(0.002)
        by_stop.start()
        time.sleep(0.002)
        by_stop.stop()
        assert by_exit.total > 0.0
        assert by_stop.total > 0.0
        assert not by_exit.running
        assert not by_stop.running


class TestEpochTimer:
    def test_records_durations(self):
        timer = EpochTimer()
        for _ in range(3):
            timer.begin_epoch()
            time.sleep(0.003)
            timer.end_epoch()
        assert len(timer.durations) == 3
        assert all(d >= 0.003 for d in timer.durations)

    def test_mean_and_total(self):
        timer = EpochTimer(durations=[1.0, 2.0, 3.0])
        assert timer.total == 6.0
        assert timer.mean_per_epoch == 2.0

    def test_empty_mean_is_zero(self):
        assert EpochTimer().mean_per_epoch == 0.0

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            EpochTimer().end_epoch()
