"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils import (
    check_image_batch,
    check_in_unit_interval,
    check_labels,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestScalarChecks:
    def test_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_unit_interval(self):
        check_in_unit_interval("x", 0.0)
        check_in_unit_interval("x", 1.0)
        with pytest.raises(ValueError):
            check_in_unit_interval("x", 1.1)

    def test_probability(self):
        check_probability("x", 0.0)
        with pytest.raises(ValueError):
            check_probability("x", 1.0)


class TestImageBatch:
    def test_valid(self):
        assert check_image_batch(np.zeros((2, 1, 4, 4))) == (2, 1, 4, 4)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError, match="NCHW"):
            check_image_batch(np.zeros((4, 4)))


class TestLabels:
    def test_valid(self):
        out = check_labels(np.array([0, 1, 2]), 3)
        assert out.dtype == np.int64

    def test_float_integral_ok(self):
        out = check_labels(np.array([0.0, 1.0]), 2)
        assert np.issubdtype(out.dtype, np.integer)

    def test_float_fractional_raises(self):
        with pytest.raises(ValueError, match="integers"):
            check_labels(np.array([0.5]), 2)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_labels(np.array([3]), 3)
        with pytest.raises(ValueError):
            check_labels(np.array([-1]), 3)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_labels(np.zeros((2, 2), dtype=int), 3)
